package fixpoint

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/optimal"
	"repro/internal/predabs"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/template"
	"repro/internal/vc"
)

// arrayInitProblem is the paper's running example (Example 2): initialize
// A[0..n) to zero, template ∀j: v ⇒ A[j]=0, Q(v) = Q_{j,{0,i,n}}.
func arrayInitProblem() *spec.Problem {
	prog := lang.MustParse(`
		program ArrayInit(array A, n) {
			i := 0;
			while loop (i < n) {
				A[i] := 0;
				i := i + 1;
			}
			assert(forall j. (0 <= j && j < n) => A[j] = 0);
		}`)
	tmpl := logic.All([]string{"j"},
		logic.Imp(logic.Unknown{Name: "v"}, logic.EqF(logic.Sel(logic.AV("A"), logic.V("j")), logic.I(0))))
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": tmpl},
		Q:         template.Domain{"v": predabs.QjV("j", []string{"0", "i", "n"})},
	}
}

func newEngine() *optimal.Engine {
	return optimal.New(smt.NewSolver(smt.Options{}))
}

func TestArrayInitPaths(t *testing.T) {
	p := arrayInitProblem()
	paths := p.Paths()
	// Entry→loop, loop→loop (inductive), loop→exit.
	want := map[string]bool{"entry->loop": false, "loop->loop": false, "loop->exit": false}
	for _, path := range paths {
		key := path.From + "->" + path.To
		if _, ok := want[key]; !ok {
			t.Errorf("unexpected path %s", key)
		}
		want[key] = true
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing path %s", k)
		}
	}
	if len(paths) != 3 {
		t.Errorf("got %d paths, want 3", len(paths))
	}
}

func TestArrayInitKnownSolutionChecks(t *testing.T) {
	p := arrayInitProblem()
	eng := newEngine()
	// The known invariant: v ↦ {0 ≤ j, j < i} (Example 3).
	sigma := template.Solution{"v": template.NewPredSet(
		logic.LeF(logic.I(0), logic.V("j")),
		logic.LtF(logic.V("j"), logic.V("i")),
	)}
	ok, fail := p.CheckAll(eng.S, sigma)
	if !ok {
		t.Fatalf("known invariant rejected; failing path %v", fail)
	}
	// A wrong invariant: v ↦ {} (i.e. all cells zero) fails the entry VC.
	bad := template.Solution{"v": template.NewPredSet()}
	if ok, _ := p.CheckAll(eng.S, bad); ok {
		t.Fatal("vacuous invariant should fail")
	}
}

func TestArrayInitLFP(t *testing.T) {
	p := arrayInitProblem()
	eng := newEngine()
	res, err := LeastFixedPoint(p, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatalf("LFP found no invariant after %d steps (exhausted=%v)", res.Steps, res.Exhausted)
	}
	if ok, fail := p.CheckAll(eng.S, res.Solution); !ok {
		t.Fatalf("LFP returned non-invariant %v; failing path %v", res.Solution, fail)
	}
	t.Logf("LFP steps=%d solution: %s", res.Steps, String(p, res.Solution))
}

func TestArrayInitGFP(t *testing.T) {
	p := arrayInitProblem()
	eng := newEngine()
	res, err := GreatestFixedPoint(p, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatalf("GFP found no invariant after %d steps (exhausted=%v)", res.Steps, res.Exhausted)
	}
	if ok, fail := p.CheckAll(eng.S, res.Solution); !ok {
		t.Fatalf("GFP returned non-invariant %v; failing path %v", res.Solution, fail)
	}
	t.Logf("GFP steps=%d solution: %s", res.Steps, String(p, res.Solution))
}

func TestArrayInitUnprovableWithBadPredicates(t *testing.T) {
	p := arrayInitProblem()
	// Remove the needed predicates: only comparisons against n remain.
	p.Q = template.Domain{"v": predabs.QjV("j", []string{"n"})}
	eng := newEngine()
	res, err := LeastFixedPoint(p, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() {
		t.Fatalf("LFP should fail without the i-comparison predicates, got %v", res.Solution)
	}
	if !res.Exhausted {
		t.Error("expected the candidate set to exhaust")
	}
}

func TestEntryExitTemplatesDefaultTrue(t *testing.T) {
	p := arrayInitProblem()
	if got := p.TemplateAt(vc.Entry); !logic.FormulaEq(got, logic.True) {
		t.Errorf("entry template = %v, want true", got)
	}
}
