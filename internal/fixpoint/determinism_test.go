package fixpoint

import (
	"testing"

	"repro/internal/optimal"
	"repro/internal/smt"
)

func newEngineWith(opts smt.Options) *optimal.Engine {
	return optimal.New(smt.NewSolver(opts))
}

// TestFixpointDeterministicWithContexts: two runs of the same fixpoint with
// incremental contexts enabled must walk the same candidate sequence and land
// on the identical invariant — incremental state (learnt clauses, lemmas,
// cores) may only change speed, never verdicts, and hence never the search.
func TestFixpointDeterministicWithContexts(t *testing.T) {
	type outcome struct {
		key   string
		found bool
		steps int
	}
	run := func(forward bool) outcome {
		p := arrayInitProblem()
		eng := newEngine()
		if !eng.S.Incremental() {
			t.Fatal("default solver should be incremental")
		}
		var res Result
		var err error
		if forward {
			res, err = LeastFixedPoint(p, eng, Options{})
		} else {
			res, err = GreatestFixedPoint(p, eng, Options{})
		}
		if err != nil {
			t.Fatal(err)
		}
		o := outcome{found: res.Found(), steps: res.Steps}
		if res.Found() {
			o.key = res.Solution.Key()
		}
		return o
	}
	for _, dir := range []struct {
		name    string
		forward bool
	}{{"LFP", true}, {"GFP", false}} {
		a := run(dir.forward)
		b := run(dir.forward)
		if a != b {
			t.Errorf("%s not deterministic: run1=%+v run2=%+v", dir.name, a, b)
		}
	}
}

// TestFixpointIncrementalVsFromScratch: with and without contexts the
// fixpoints must find the same invariant — the incremental machinery is a
// pure optimization.
func TestFixpointIncrementalVsFromScratch(t *testing.T) {
	run := func(opts smt.Options, forward bool) (string, bool) {
		p := arrayInitProblem()
		eng := newEngineWith(opts)
		var res Result
		var err error
		if forward {
			res, err = LeastFixedPoint(p, eng, Options{})
		} else {
			res, err = GreatestFixedPoint(p, eng, Options{})
		}
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found() {
			return "", false
		}
		return res.Solution.Key(), true
	}
	for _, dir := range []struct {
		name    string
		forward bool
	}{{"LFP", true}, {"GFP", false}} {
		incKey, incFound := run(smt.Options{}, dir.forward)
		rawKey, rawFound := run(smt.Options{NoIncremental: true}, dir.forward)
		if incFound != rawFound || incKey != rawKey {
			t.Errorf("%s diverged: incremental=(%v,%q) from-scratch=(%v,%q)",
				dir.name, incFound, incKey, rawFound, rawKey)
		}
	}
}
