// Package fixpoint implements the two iterative invariant-inference
// algorithms of §4 (Fig. 3): LeastFixedPoint propagates facts forward from
// the strongest template instantiation, weakening along failing paths;
// GreatestFixedPoint propagates backward from the weakest instantiation,
// strengthening along failing paths. Both maintain a set of candidate
// solutions and replace a failing candidate by the optimal solutions of the
// failing path's verification condition.
package fixpoint

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/optimal"
	"repro/internal/par"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/template"
	"repro/internal/vc"
)

// Options bounds an iterative run.
type Options struct {
	// MaxSteps bounds worklist iterations (default 500).
	MaxSteps int
	// MaxCandidates bounds the candidate set (default 64); excess candidates
	// are dropped oldest-first, which can cost completeness but never
	// soundness.
	MaxCandidates int
	// Stats optionally records Figure 8 candidate counts.
	Stats *stats.Collector
	// All requests exhaustive search: instead of stopping at the first
	// invariant solution the run continues until every candidate is
	// resolved, returning all fixed-point solutions found (used for
	// maximally-weak precondition enumeration, §6).
	All bool
	// Stop, when non-nil, is polled between worklist steps; returning true
	// abandons the run (used by timeout-bounded harnesses so abandoned
	// runs stop consuming CPU).
	Stop func() bool
	// Parallel is the number of worklist candidates repaired and scored
	// concurrently per round (default runtime.GOMAXPROCS(0); 1 forces the
	// sequential engine). Each candidate's failing-VC check and
	// OptimalSolutions repair is independent; results are merged in
	// deterministic batch order, so runs are reproducible for a fixed
	// Parallel regardless of goroutine scheduling.
	Parallel int
	// Trace, when non-nil, receives a line per worklist event (debugging).
	Trace func(format string, args ...any)
}

func (o Options) trace(format string, args ...any) {
	if o.Trace != nil {
		o.Trace(format, args...)
	}
}

func (o Options) normalize() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 500
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 64
	}
	o.Parallel = par.Workers(o.Parallel)
	return o
}

// Result reports the outcome of an iterative run.
type Result struct {
	// Solution is the first invariant solution found (nil if none).
	Solution template.Solution
	// All contains every invariant solution found when Options.All is set.
	All []template.Solution
	// Steps is the number of worklist iterations executed.
	Steps int
	// Exhausted reports that the candidate set emptied (definite "no
	// solution in this template/predicate space" modulo solver
	// incompleteness); false with a nil Solution means MaxSteps was hit.
	Exhausted bool
	// Truncated reports that the search space was clipped: candidates were
	// dropped at the MaxCandidates cap, or an exhaustive (Options.All) run
	// ended at MaxSteps with candidates still unresolved. A truncated
	// Options.All enumeration may be missing fixed-point solutions, so §6
	// extremal sets computed from it are best-effort.
	Truncated bool
	// Aborted reports that Options.Stop fired and the run was abandoned
	// early. An aborted run's nil Solution is not evidence of absence.
	Aborted bool
}

// Found reports whether an invariant solution was discovered.
func (r Result) Found() bool { return r.Solution != nil }

type direction int

const (
	forward direction = iota
	backward
)

// LeastFixedPoint runs Fig. 3(a).
func LeastFixedPoint(p *spec.Problem, eng *optimal.Engine, opts Options) (Result, error) {
	return run(p, eng, opts, forward)
}

// GreatestFixedPoint runs Fig. 3(b).
func GreatestFixedPoint(p *spec.Problem, eng *optimal.Engine, opts Options) (Result, error) {
	return run(p, eng, opts, backward)
}

func run(p *spec.Problem, eng *optimal.Engine, opts Options, dir direction) (Result, error) {
	opts = opts.normalize()
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	var sigma0 template.Solution
	var err error
	if dir == forward {
		sigma0, err = p.InitialLFP()
	} else {
		sigma0, err = p.InitialGFP()
	}
	if err != nil {
		return Result{}, err
	}

	// The worklist is goal-directed: the paper's "choose σ ∈ S, path" is
	// unspecified. Picking the candidate with the fewest failing paths
	// keeps floods of vacuous candidates from starving promising ones, and
	// preferring a failing path the algorithm can re-solve (one whose
	// source — GFP — or target — LFP — template has unknowns) lets a
	// candidate keep strengthening/weakening instead of dying on a fixed
	// entry or exit condition it might satisfy after further steps.
	progressable := func(path vc.Path) bool {
		if dir == forward {
			return len(logic.Unknowns(p.TemplateAt(path.To))) > 0
		}
		return len(logic.Unknowns(p.TemplateAt(path.From))) > 0
	}
	type scored struct {
		sigma   template.Solution
		fails   int
		fail    *vc.Path
		failIdx int
		seq     int
	}
	// Every candidate is scored against the same per-path VC skeletons, so
	// each probe goes through the path's persistent incremental context
	// (falls back to from-scratch solving when the solver is non-incremental).
	pathValid := func(i int, sigma template.Solution) bool {
		f := p.PathVCAt(i, sigma)
		if c := eng.S.ContextFor(p.PathVCSkeleton(i)); c != nil {
			return c.Valid(f)
		}
		return eng.S.Valid(f)
	}
	score := func(sigma template.Solution, seq int) scored {
		s := scored{sigma: sigma, seq: seq, failIdx: -1}
		// Probe every path concurrently (each goes through its own skeleton
		// context, and contended contexts fan out across sibling lanes); the
		// fold below stays sequential in path order, so the failing path a
		// candidate is repaired on is deterministic.
		valid := make([]bool, len(p.Paths()))
		par.ForEach(len(valid), opts.Parallel, func(i int) {
			valid[i] = pathValid(i, sigma)
		})
		for i := range p.Paths() {
			if !valid[i] {
				path := p.Paths()[i]
				s.fails++
				if s.fail == nil || (!progressable(*s.fail) && progressable(path)) {
					s.fail = &p.Paths()[i]
					s.failIdx = i
				}
			}
		}
		return s
	}
	cands := []scored{score(sigma0, 0)}
	seen := map[string]bool{sigma0.Key(): true}
	seq := 1
	var res Result
	for step := 0; step < opts.MaxSteps && len(cands) > 0; {
		if opts.Stop != nil && opts.Stop() {
			res.Aborted = true
			break
		}
		sort.SliceStable(cands, func(i, j int) bool {
			if cands[i].fails != cands[j].fails {
				return cands[i].fails < cands[j].fails
			}
			return cands[i].seq < cands[j].seq
		})
		if cands[0].fails == 0 {
			step++
			res.Steps = step
			opts.Stats.RecordCandidates(len(cands))
			best := cands[0]
			cands = cands[1:]
			if !opts.All {
				res.Solution = best.sigma
				return res, nil
			}
			if res.Solution == nil {
				res.Solution = best.sigma
			}
			res.All = append(res.All, best.sigma)
			continue
		}

		// Repair a deterministic batch of the best failing candidates
		// concurrently: after the sort every candidate in the batch is
		// failing, and each repair (an OptimalSolutions call on the failing
		// path's VC) is independent of the others.
		batch := opts.Parallel
		if batch > len(cands) {
			batch = len(cands)
		}
		if rem := opts.MaxSteps - step; batch > rem {
			batch = rem
		}
		take := cands[:batch:batch]
		cands = cands[batch:]
		for i := range take {
			opts.Stats.RecordCandidates(len(cands) + batch - i)
			opts.trace("step %d: candidates=%d, resolving (%d failing) %s on path %s->%s",
				step+i, len(cands)+batch-i, take[i].fails, take[i].sigma, take[i].fail.From, take[i].fail.To)
		}
		step += batch
		res.Steps = step

		repaired := make([][]template.Solution, batch)
		par.ForEach(batch, opts.Parallel, func(i int) {
			if opts.Stop != nil && opts.Stop() {
				return
			}
			repaired[i] = step1(p, eng, take[i].sigma, take[i].failIdx, dir)
		})

		// Merge the repair results in batch order — a deterministic,
		// scheduling-independent order (step1 already returns solutions
		// stably sorted by canonical key) — then score the fresh candidates
		// concurrently and append them in that same order.
		var fresh []template.Solution
		for i := range take {
			for _, next := range repaired[i] {
				k := next.Key()
				if seen[k] {
					continue
				}
				seen[k] = true
				if len(cands)+len(fresh) >= opts.MaxCandidates {
					opts.trace("step %d: candidate cap reached, dropping %s", step, next)
					res.Truncated = true
					continue
				}
				opts.trace("step %d: new candidate %s", step, next)
				fresh = append(fresh, next)
			}
		}
		newScored := make([]scored, len(fresh))
		par.ForEach(len(fresh), opts.Parallel, func(i int) {
			newScored[i] = score(fresh[i], 0)
		})
		for i := range newScored {
			newScored[i].seq = seq
			seq++
			cands = append(cands, newScored[i])
		}
	}
	if !res.Aborted && opts.Stop != nil && opts.Stop() {
		// Stop fired mid-batch (inside a repair or scoring worker): the
		// round's partial results are conservative, but the run is still an
		// abort, not a completed search.
		res.Aborted = true
	}
	res.Exhausted = len(cands) == 0 && !res.Aborted
	if opts.All && !res.Exhausted && !res.Aborted {
		// An exhaustive enumeration that ran out of steps with candidates
		// still pending may be missing fixed-point solutions.
		res.Truncated = true
	}
	if opts.All && res.Solution != nil {
		res.All = dedupeSolutions(res.All)
	}
	return res, nil
}

// step1 performs one worklist update (Fig. 3, lines 6-7): replace sigma by
// the optimal re-solutions of the failing path's VC (by path index, so the
// problem's compiled skeletons are reused).
func step1(p *spec.Problem, eng *optimal.Engine, sigma template.Solution, pathIdx int, dir direction) []template.Solution {
	if dir == forward {
		return stepForward(p, eng, sigma, pathIdx)
	}
	return stepBackward(p, eng, sigma, pathIdx)
}

func stepForward(p *spec.Problem, eng *optimal.Engine, sigma template.Solution, pathIdx int) []template.Solution {
	path := p.Paths()[pathIdx]
	tmplTo := p.TemplateAt(path.To)
	toUnknowns := logic.Unknowns(tmplTo)
	if len(toUnknowns) == 0 {
		return nil // e.g. an assertion path into exit: nothing to weaken
	}
	// φ := VC(⟨τ1σ, δ, τ2⟩) ∧ θ with θ := τ2σ ⇒ τ2, over SSA exit variables.
	vcf := p.ForwardVCAt(pathIdx, sigma)
	postCur := path.Sigma.Apply(p.FillTemplateAt(path.To, sigma))
	theta := logic.Imp(postCur, p.RenamedTemplateTo(pathIdx))
	phi := logic.Conj(vcf, theta)

	domain := template.Domain{}
	for _, u := range toUnknowns {
		domain[u] = p.Q[u]
	}
	domain = domain.Rename(path.Sigma)

	inv := path.Sigma.Inverse()
	sigmaP := sigma.RestrictComplement(toUnknowns)
	var out []template.Solution
	for _, sol := range eng.OptimalSolutions(phi, domain) {
		out = append(out, sol.Rename(inv).Merge(sigmaP))
	}
	return out
}

func stepBackward(p *spec.Problem, eng *optimal.Engine, sigma template.Solution, pathIdx int) []template.Solution {
	path := p.Paths()[pathIdx]
	tmplFrom := p.TemplateAt(path.From)
	fromUnknowns := logic.Unknowns(tmplFrom)
	if len(fromUnknowns) == 0 {
		return nil // e.g. a path out of entry with a fixed (true) precondition
	}
	// φ := VC(⟨τ1, δ, τ2σ·σt⟩) ∧ θ with θ := τ1 ⇒ τ1σ, over program variables.
	vcf := p.BackwardVCAt(pathIdx, sigma)
	theta := logic.Imp(tmplFrom, p.FillTemplateAt(path.From, sigma))
	phi := logic.Conj(vcf, theta)

	domain := template.Domain{}
	for _, u := range fromUnknowns {
		domain[u] = p.Q[u]
	}
	sigmaP := sigma.RestrictComplement(fromUnknowns)
	var out []template.Solution
	for _, sol := range eng.OptimalSolutions(phi, domain) {
		out = append(out, sol.Merge(sigmaP))
	}
	return out
}

func dedupeSolutions(ss []template.Solution) []template.Solution {
	seen := map[string]bool{}
	out := ss[:0:0]
	for _, s := range ss {
		k := s.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

// String renders a solution against a problem's templates for display.
func String(p *spec.Problem, sigma template.Solution) string {
	out := ""
	for _, cut := range append([]string{vc.Entry}, append(p.Prog.CutPoints(), vc.Exit)...) {
		t := p.TemplateAt(cut)
		if len(logic.Unknowns(t)) == 0 {
			continue
		}
		out += fmt.Sprintf("%s: %s\n", cut, logic.Simplify(sigma.Fill(t)))
	}
	return out
}
