package fixpoint

import (
	"testing"
)

// TestStopAborts checks that a firing Stop flag is reported as Aborted — not
// as exhaustion, which would read as a definite "no invariant exists".
func TestStopAborts(t *testing.T) {
	for _, run := range []struct {
		name string
		fn   func() (Result, error)
	}{
		{"LFP", func() (Result, error) {
			return LeastFixedPoint(arrayInitProblem(), newEngine(), Options{Stop: func() bool { return true }})
		}},
		{"GFP", func() (Result, error) {
			return GreatestFixedPoint(arrayInitProblem(), newEngine(), Options{Stop: func() bool { return true }})
		}},
	} {
		res, err := run.fn()
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if !res.Aborted {
			t.Errorf("%s: Stop fired but Aborted=false", run.name)
		}
		if res.Exhausted {
			t.Errorf("%s: an aborted run must not claim exhaustion", run.name)
		}
		if res.Found() {
			t.Errorf("%s: found a solution under an always-true Stop", run.name)
		}
	}
}

// TestMaxCandidatesTruncates forces candidate drops and checks they are
// surfaced: a failed search that silently dropped candidates must not look
// like a definite negative.
func TestMaxCandidatesTruncates(t *testing.T) {
	p := arrayInitProblem()
	eng := newEngine()
	res, err := LeastFixedPoint(p, eng, Options{All: true, MaxCandidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatalf("MaxCandidates=1 run not marked truncated (steps=%d, |All|=%d)",
			res.Steps, len(res.All))
	}
	if res.Aborted {
		t.Error("truncation is not an abort")
	}
}

// TestAllModeTruncatesAtMaxSteps: an exhaustive (§6) run that stops at
// MaxSteps with candidates pending has not enumerated every fixed point, so
// it must be marked truncated even when it found solutions.
func TestAllModeTruncatesAtMaxSteps(t *testing.T) {
	p := arrayInitProblem()
	eng := newEngine()
	res, err := GreatestFixedPoint(p, eng, Options{All: true, MaxSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted {
		t.Skip("search exhausted within one step; cannot exercise truncation")
	}
	if !res.Truncated {
		t.Error("All-mode run hit MaxSteps with candidates pending but Truncated=false")
	}
}

// TestCompleteRunNotTruncated guards against the flags leaking into healthy
// runs.
func TestCompleteRunNotTruncated(t *testing.T) {
	p := arrayInitProblem()
	eng := newEngine()
	res, err := LeastFixedPoint(p, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("LFP should prove array init")
	}
	if res.Truncated || res.Aborted {
		t.Errorf("clean run flagged truncated=%v aborted=%v", res.Truncated, res.Aborted)
	}
}
