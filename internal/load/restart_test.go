package load

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/store"
)

// TestRestartRecovery is the persistence load gate: drive a vs3d backend
// with the default corpus, kill it the way a drain does (flush + close the
// knowledge store), boot a fresh backend on the same store directory, and
// prove one corpus pass is enough to be back at warm-path latency — no
// wrong verdicts, p95 within 1.5x of the pre-restart phase, and a
// per-request from-scratch SMT query rate no worse than before the restart.
func TestRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("restart load scenario is not a -short test")
	}
	dir := t.TempDir()
	params := core.Config{}.SMT.StoreParams()
	open := func() *store.Store {
		st, err := store.Open(dir, store.Options{Params: params, Logf: t.Logf})
		if err != nil {
			t.Fatalf("store.Open: %v", err)
		}
		return st
	}

	st := open()
	srv := serve.New(serve.Config{Pool: 2, Store: st})
	ts := httptest.NewServer(srv.Handler())

	var ts2 *httptest.Server
	var st2 *store.Store
	restart := func(ctx context.Context) (string, error) {
		srv.StartDrain() // flush the write-behind queue, as SIGTERM would
		ts.Close()       // waits for in-flight requests
		if err := st.Close(); err != nil {
			return "", err
		}
		st2 = open()
		if st2.Stats().ColdStart {
			t.Error("restarted store reported a cold start")
		}
		ts2 = httptest.NewServer(serve.New(serve.Config{Pool: 2, Store: st2}).Handler())
		return ts2.URL, nil
	}

	corpus := DefaultCorpus()
	res, err := RunRestart(context.Background(), Options{
		BaseURL:     ts.URL,
		Corpus:      corpus,
		Concurrency: 2,
		Requests:    2 * len(corpus), // one cold + one warm pass before the restart
		ClientKey:   "restart-test",
	}, restart)
	if ts2 != nil {
		defer ts2.Close()
	}
	if st2 != nil {
		defer st2.Close()
	}
	if err != nil {
		t.Fatal(err)
	}

	if res.Before.Incorrect != 0 || res.Before.Errors != 0 {
		t.Fatalf("before phase: %+v", res.Before)
	}
	if res.After.Incorrect != 0 || res.After.Errors != 0 {
		t.Fatalf("after phase: %+v", res.After)
	}
	if res.After.OK != len(corpus) {
		t.Fatalf("after pass ok = %d, want %d", res.After.OK, len(corpus))
	}
	if !res.Recovered {
		t.Errorf("restart did not recover within one corpus pass: p95 %.1fms -> %.1fms (ratio %.2f), query rate ratio %.2f",
			res.Before.P95MS, res.After.P95MS, res.P95Ratio, res.QueryRate)
	}
	if res.After.SMTQueries != 0 {
		t.Errorf("restarted backend ran %d from-scratch SMT queries on a corpus its predecessor solved; want 0", res.After.SMTQueries)
	}
	t.Logf("before: %d reqs, %d queries, p95 %.1fms", res.Before.Requests, res.Before.SMTQueries, res.Before.P95MS)
	t.Logf("after:  %d reqs, %d queries, p95 %.1fms (restart %.2fs)", res.After.Requests, res.After.SMTQueries, res.After.P95MS, res.RestartSeconds)
}
