package load

import "fmt"

// arrayInitVariant is the paper's running example (§1 ArrayInit) with one
// variant-specific junk predicate appended, so every k yields a distinct
// spec source — a distinct problem key, parsed problem, and compiled VC
// skeleton — while staying cheap to verify. Distinctness is what makes the
// corpus "mixed": under affinity routing each variant warms exactly one
// backend; under random routing every backend pays the cold cost of every
// variant.
func arrayInitVariant(k int) string {
	src := `
program ArrayInit(array A, n) {
  i := 0;
  while loop (i < n) {
    A[i] := 0;
    i := i + 1;
  }
  assert(forall j. (0 <= j && j < n) => A[j] = 0);
}
template loop: forall j. ?v => A[j] = 0;
predicates v: j < 0, j <= 0, j > 0, j >= 0, j < i, j <= i, j > i, j >= i, j < n, j <= n, j > n, j >= n`
	if k > 0 {
		src += fmt.Sprintf(", j + %d < n + %d", k, k+13)
	}
	return src + ";\n"
}

// guardedInitSpec is a variant whose loop guard covers only part of the
// asserted range; with the m <= n entry template it still proves, giving
// the corpus a second program shape.
const guardedInitSpec = `
program GuardedInit(array A, n, m) {
  i := 0;
  while loop (i < n) {
    A[i] := 0;
    i := i + 1;
  }
  assert(forall k. (0 <= k && k < m) => A[k] = 0);
}
template entry: m <= n;
template loop: m <= n && (forall k. ?v1 => A[k] = 0);
predicates v1: 0 <= k, k < i, k < n, k < m;
`

// scaledInitSpec is ArrayInit with a stride-2 counter in the guard: the
// invariant needs the non-difference atom j = 2·i, so verifying it routes
// the backend's theory checks through the general-LIA engine rather than
// the difference closure — the corpus's coverage of that code path.
const scaledInitSpec = `
program ScaledInit(array A, n) {
  i := 0;
  j := 0;
  while loop (j < 2*n) {
    A[i] := 0;
    i := i + 1;
    j := j + 2;
  }
  assert(forall k. (0 <= k && k < n) => A[k] = 0);
}
template loop: ?v0 && (forall k. ?v1 => A[k] = 0);
predicates v0: j <= 2*i, j >= 2*i, j <= 2*n, j >= 2*n, i <= 2*j, i >= 2*j;
predicates v1: 0 <= k, k < i, k < n;
`

// doubleStrideSpec proves the functional post-condition j = 2·n of a
// stride-2 counter loop: a scalar-only general-LIA shape (no arrays).
const doubleStrideSpec = `
program DoubleStride(n) {
  assume(n >= 0);
  i := 0;
  j := 0;
  while loop (i < n) {
    i := i + 1;
    j := j + 2;
  }
  assert(j = 2*n);
}
template loop: ?v0;
predicates v0: j <= 2*i, j >= 2*i, i <= n, 0 <= i;
`

// DefaultCorpus returns the standard mixed corpus: 8 distinct ArrayInit
// skeleton variants × {lfp, gfp}, CFP on the two cheapest variants, the
// GuardedInit shape, and the two general-LIA shapes (ScaledInit,
// DoubleStride) — 22 items over 11 distinct problem keys, all expected
// to prove. Cold cost per item is sub-second, so a few passes over the
// corpus finish quickly while still exercising the warm/cold split the
// cluster router exists for.
func DefaultCorpus() []Item {
	var items []Item
	for k := 0; k < 8; k++ {
		spec := arrayInitVariant(k)
		items = append(items,
			Item{Name: fmt.Sprintf("array-init-%d/lfp", k), Spec: spec, Method: "lfp", WantProved: true},
			Item{Name: fmt.Sprintf("array-init-%d/gfp", k), Spec: spec, Method: "gfp", WantProved: true},
		)
	}
	items = append(items,
		Item{Name: "array-init-0/cfp", Spec: arrayInitVariant(0), Method: "cfp", WantProved: true},
		Item{Name: "array-init-1/cfp", Spec: arrayInitVariant(1), Method: "cfp", WantProved: true},
		Item{Name: "guarded-init/lfp", Spec: guardedInitSpec, Method: "lfp", WantProved: true},
		Item{Name: "scaled-init/lfp", Spec: scaledInitSpec, Method: "lfp", WantProved: true},
		Item{Name: "double-stride/lfp", Spec: doubleStrideSpec, Method: "lfp", WantProved: true},
	)
	return items
}

// SmokeCorpus is a minimal fast corpus for CI smoke runs: two skeletons,
// lfp only.
func SmokeCorpus() []Item {
	return []Item{
		{Name: "array-init-0/lfp", Spec: arrayInitVariant(0), Method: "lfp", WantProved: true},
		{Name: "array-init-1/lfp", Spec: arrayInitVariant(1), Method: "lfp", WantProved: true},
	}
}
