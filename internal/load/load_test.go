package load

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
)

// TestRunAgainstRealBackend drives a real in-process vs3d server with the
// default corpus and checks the report: every verdict correct, latency and
// server-side counters populated, and a second (warm) pass showing the
// cache-hit ratio climbing — the signal the whole cluster design optimizes.
func TestRunAgainstRealBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("load run against a real engine is not a -short test")
	}
	ts := httptest.NewServer(serve.New(serve.Config{Pool: 2}).Handler())
	defer ts.Close()

	corpus := DefaultCorpus()
	cold, err := Run(context.Background(), Options{
		BaseURL:     ts.URL,
		Corpus:      corpus,
		Concurrency: 2,
		Requests:    len(corpus),
		ClientKey:   "load-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Incorrect != 0 || cold.Errors != 0 || cold.Aborted != 0 {
		t.Fatalf("cold pass: %+v", cold)
	}
	if cold.OK != len(corpus) {
		t.Fatalf("ok = %d, want %d", cold.OK, len(corpus))
	}
	if cold.P50MS <= 0 || cold.P95MS < cold.P50MS || cold.P99MS < cold.P95MS {
		t.Errorf("implausible percentiles: %+v", cold)
	}
	if cold.SMTQueries == 0 {
		t.Errorf("no SMT queries measured on a cold pass")
	}

	warm, err := Run(context.Background(), Options{
		BaseURL:     ts.URL,
		Corpus:      corpus,
		Concurrency: 2,
		Requests:    len(corpus),
		ClientKey:   "load-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Incorrect != 0 || warm.Errors != 0 {
		t.Fatalf("warm pass: %+v", warm)
	}
	if warm.SMTQueries >= cold.SMTQueries {
		t.Errorf("warm pass made %d from-scratch queries, cold %d — caches not engaged",
			warm.SMTQueries, cold.SMTQueries)
	}
	if warm.CacheHitRatio <= cold.CacheHitRatio {
		t.Errorf("warm hit ratio %.3f not above cold %.3f", warm.CacheHitRatio, cold.CacheHitRatio)
	}
	t.Logf("cold: %d queries, hit ratio %.3f, p95 %.1fms", cold.SMTQueries, cold.CacheHitRatio, cold.P95MS)
	t.Logf("warm: %d queries, hit ratio %.3f, p95 %.1fms", warm.SMTQueries, warm.CacheHitRatio, warm.P95MS)
}

func TestPercentiles(t *testing.T) {
	ms := make([]float64, 100)
	for i := range ms {
		ms[i] = float64(i + 1)
	}
	p50, p95, p99, mean := percentiles(ms)
	if p50 != 50 || p95 != 95 || p99 != 99 {
		t.Errorf("p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	if mean != 50.5 {
		t.Errorf("mean=%v", mean)
	}
	if a, b, c, d := percentiles(nil); a != 0 || b != 0 || c != 0 || d != 0 {
		t.Error("empty percentiles not zero")
	}
}
