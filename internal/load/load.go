// Package load drives a vs3d backend or a vs3router front tier with a
// mixed problem corpus at configurable concurrency and reports the numbers
// the scale-out story is judged on: p50/p95/p99 latency, throughput, shed
// rate, verdict correctness, and the server-side cache economics
// (from-scratch SMT queries and cache-hit ratio, read as /v1/stats deltas).
// cmd/vs3load is the CLI; the cluster benchmark (BENCH_6) reuses Run for
// its affinity-vs-random comparison. This harness is the regression gate
// future scale-out and persistence PRs run against.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rpc"
)

// Item is one corpus entry: a spec, the method to run, and the expected
// verdict (the generator reports any mismatch as an incorrect verdict —
// the one number that must stay zero under any load).
type Item struct {
	Name       string `json:"name"`
	Spec       string `json:"spec"`
	Method     string `json:"method"`
	WantProved bool   `json:"want_proved"`
}

// Options configures one load run.
type Options struct {
	// BaseURL is the vs3d or vs3router base URL (no trailing slash).
	BaseURL string
	// Corpus is the item mix; workers walk it round-robin so every item
	// gets an even share (default DefaultCorpus()).
	Corpus []Item
	// Concurrency is the number of in-flight requests (default 4).
	Concurrency int
	// Requests is the total number of requests to issue (default
	// 4×len(Corpus)).
	Requests int
	// TimeoutMS is the per-request deadline forwarded to the server
	// (default 0: server default).
	TimeoutMS int64
	// ClientKey tags requests for the server's per-client fair queueing.
	ClientKey string
	// Client overrides the HTTP client (default: shared keep-alive pool).
	Client *http.Client
	// Proto selects the request transport: "http" (default) posts JSON per
	// request; "rpc" discovers the target's binary VS3R endpoint (the
	// X-VS3-RPC header on GET /healthz) and drives verifies over persistent
	// multiplexed connections. Stats probes and health checks stay on HTTP
	// either way.
	Proto string

	// rpcc is the discovered binary client, set by Run when Proto is "rpc".
	rpcc *rpc.Client
}

func (o Options) normalize() Options {
	if len(o.Corpus) == 0 {
		o.Corpus = DefaultCorpus()
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Requests <= 0 {
		o.Requests = 4 * len(o.Corpus)
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: o.Concurrency + 4}}
	}
	return o
}

// Result is one load run's report.
type Result struct {
	BaseURL     string  `json:"base_url"`
	Proto       string  `json:"proto,omitempty"`
	Concurrency int     `json:"concurrency"`
	Requests    int     `json:"requests"`
	Seconds     float64 `json:"seconds"`

	OK        int `json:"ok"`
	Incorrect int `json:"incorrect"` // 200s whose verdict contradicts the corpus expectation
	Shed      int `json:"shed"`      // 429
	Aborted   int `json:"aborted"`   // 504/499 (deadline or disconnect)
	Errors    int `json:"errors"`    // transport failures and unexpected statuses

	ThroughputRPS float64 `json:"throughput_rps"` // completed (OK) requests per second
	ShedRate      float64 `json:"shed_rate"`
	P50MS         float64 `json:"p50_ms"`
	P95MS         float64 `json:"p95_ms"`
	P99MS         float64 `json:"p99_ms"`
	MeanMS        float64 `json:"mean_ms"`

	// Server-side deltas over the run, read from /v1/stats before and
	// after (works against both vs3d and vs3router, which share field
	// names; the router aggregates its live backends).
	SMTQueries    int64   `json:"smt_queries"`
	SMTCacheHits  int64   `json:"smt_cache_hits"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	FMScratch     int64   `json:"fm_scratch"`
	FMIncremental int64   `json:"fm_incremental"`
	ServerShed    int64   `json:"server_rejected"`
}

// Work returns the run's server-side from-scratch solving work: SMT validity
// queries plus Fourier–Motzkin eliminations. The store-aware routing
// benchmark (BENCH_10) compares this quantity across arms.
func (r Result) Work() int64 { return r.SMTQueries + r.FMScratch + r.FMIncremental }

// statsProbe is the slice of a /v1/stats body the generator diffs.
type statsProbe struct {
	Requests      int64 `json:"requests"`
	Rejected      int64 `json:"rejected"`
	Queries       int64 `json:"smt_queries"`
	CacheHits     int64 `json:"smt_cache_hits"`
	FMScratch     int64 `json:"fm_scratch"`
	FMIncremental int64 `json:"fm_incremental"`
}

func fetchStats(ctx context.Context, client *http.Client, base string) (statsProbe, error) {
	var p statsProbe
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return p, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return p, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return p, fmt.Errorf("stats: status %d", resp.StatusCode)
	}
	return p, json.NewDecoder(resp.Body).Decode(&p)
}

// Run executes the load and assembles the report. It returns an error only
// when the target is unreachable; verdict mismatches and transport errors
// during the run are counted in the Result, not fatal.
func Run(ctx context.Context, opts Options) (Result, error) {
	opts = opts.normalize()
	before, err := fetchStats(ctx, opts.Client, opts.BaseURL)
	if err != nil {
		return Result{}, fmt.Errorf("target not reachable: %w", err)
	}
	if opts.Proto == "rpc" {
		addr, err := DiscoverRPC(ctx, opts.Client, opts.BaseURL)
		if err != nil {
			return Result{}, err
		}
		opts.rpcc = rpc.NewClient(addr, rpc.ClientConfig{MaxConns: (opts.Concurrency + 127) / 128, StreamsPerConn: 128})
		defer opts.rpcc.Close()
	}

	var (
		next      atomic.Int64
		mu        sync.Mutex
		latencies []float64
		res       = Result{BaseURL: opts.BaseURL, Proto: opts.Proto, Concurrency: opts.Concurrency, Requests: opts.Requests}
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(opts.Requests) || ctx.Err() != nil {
					return
				}
				item := opts.Corpus[i%int64(len(opts.Corpus))]
				outcome, ms := runOne(ctx, opts, item)
				mu.Lock()
				switch outcome {
				case outcomeOK:
					res.OK++
					latencies = append(latencies, ms)
				case outcomeIncorrect:
					res.Incorrect++
					latencies = append(latencies, ms)
				case outcomeShed:
					res.Shed++
				case outcomeAborted:
					res.Aborted++
				default:
					res.Errors++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Seconds = time.Since(start).Seconds()

	after, err := fetchStats(ctx, opts.Client, opts.BaseURL)
	if err == nil {
		res.SMTQueries = after.Queries - before.Queries
		res.SMTCacheHits = after.CacheHits - before.CacheHits
		res.FMScratch = after.FMScratch - before.FMScratch
		res.FMIncremental = after.FMIncremental - before.FMIncremental
		res.ServerShed = after.Rejected - before.Rejected
		if total := res.SMTQueries + res.SMTCacheHits; total > 0 {
			res.CacheHitRatio = float64(res.SMTCacheHits) / float64(total)
		}
	}
	if res.Seconds > 0 {
		res.ThroughputRPS = float64(res.OK) / res.Seconds
	}
	if res.Requests > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Requests)
	}
	res.P50MS, res.P95MS, res.P99MS, res.MeanMS = percentiles(latencies)
	return res, nil
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeIncorrect
	outcomeShed
	outcomeAborted
	outcomeError
)

// DiscoverRPC resolves base's advertised binary rpc endpoint by reading the
// X-VS3-RPC header off GET /healthz. A bare ":port" advertisement (a daemon
// listening on an unspecified host) is joined with base's host.
func DiscoverRPC(ctx context.Context, client *http.Client, base string) (string, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", fmt.Errorf("rpc discovery: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	adv := resp.Header.Get("X-VS3-RPC")
	if adv == "" {
		return "", fmt.Errorf("rpc discovery: %s does not advertise a binary rpc endpoint (X-VS3-RPC)", base)
	}
	if !strings.HasPrefix(adv, ":") {
		return adv, nil
	}
	u, err := url.Parse(base)
	if err != nil {
		return "", fmt.Errorf("rpc discovery: %w", err)
	}
	return net.JoinHostPort(u.Hostname(), strings.TrimPrefix(adv, ":")), nil
}

// runOneRPC is runOne's binary twin: one verify over a multiplexed stream.
func runOneRPC(ctx context.Context, opts Options, item Item) (outcome, float64) {
	start := time.Now()
	resp, err := opts.rpcc.Call(ctx, rpc.Request{
		Kind:      rpc.KindVerify,
		Method:    item.Method,
		TimeoutMS: opts.TimeoutMS,
		Client:    opts.ClientKey,
		Spec:      item.Spec,
	})
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		return outcomeError, ms
	}
	switch resp.Status {
	case http.StatusOK:
		var vr struct {
			Proved  bool `json:"proved"`
			Aborted bool `json:"aborted"`
		}
		if err := json.Unmarshal(resp.Body, &vr); err != nil {
			return outcomeError, ms
		}
		if vr.Proved != item.WantProved {
			return outcomeIncorrect, ms
		}
		return outcomeOK, ms
	case http.StatusTooManyRequests:
		return outcomeShed, ms
	case http.StatusGatewayTimeout, 499:
		return outcomeAborted, ms
	default:
		return outcomeError, ms
	}
}

func runOne(ctx context.Context, opts Options, item Item) (outcome, float64) {
	if opts.rpcc != nil {
		return runOneRPC(ctx, opts, item)
	}
	body, _ := json.Marshal(map[string]any{
		"spec": item.Spec, "method": item.Method, "timeout_ms": opts.TimeoutMS,
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.BaseURL+"/v1/verify", bytes.NewReader(body))
	if err != nil {
		return outcomeError, 0
	}
	req.Header.Set("Content-Type", "application/json")
	if opts.ClientKey != "" {
		req.Header.Set("X-VS3-Client", opts.ClientKey)
	}
	start := time.Now()
	resp, err := opts.Client.Do(req)
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		return outcomeError, ms
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		var vr struct {
			Proved  bool `json:"proved"`
			Aborted bool `json:"aborted"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
			return outcomeError, ms
		}
		if vr.Proved != item.WantProved {
			return outcomeIncorrect, ms
		}
		return outcomeOK, ms
	case http.StatusTooManyRequests:
		return outcomeShed, ms
	case http.StatusGatewayTimeout, 499:
		return outcomeAborted, ms
	default:
		return outcomeError, ms
	}
}

// percentiles returns p50/p95/p99/mean over latencies in milliseconds.
func percentiles(ms []float64) (p50, p95, p99, mean float64) {
	if len(ms) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return at(0.50), at(0.95), at(0.99), sum / float64(len(sorted))
}

// WriteReport prints a human-readable digest.
func (r Result) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "target        %s\n", r.BaseURL)
	fmt.Fprintf(w, "requests      %d (concurrency %d) in %.2fs\n", r.Requests, r.Concurrency, r.Seconds)
	fmt.Fprintf(w, "outcomes      ok=%d incorrect=%d shed=%d aborted=%d errors=%d\n",
		r.OK, r.Incorrect, r.Shed, r.Aborted, r.Errors)
	fmt.Fprintf(w, "throughput    %.1f req/s (shed rate %.1f%%)\n", r.ThroughputRPS, 100*r.ShedRate)
	fmt.Fprintf(w, "latency ms    p50=%.1f p95=%.1f p99=%.1f mean=%.1f\n", r.P50MS, r.P95MS, r.P99MS, r.MeanMS)
	fmt.Fprintf(w, "smt           queries=%d cache_hits=%d hit_ratio=%.3f\n", r.SMTQueries, r.SMTCacheHits, r.CacheHitRatio)
	fmt.Fprintf(w, "fm            scratch=%d incremental=%d (from-scratch work %d)\n", r.FMScratch, r.FMIncremental, r.Work())
}
