package load

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// RestartFunc restarts the target daemon and returns once it is healthy
// again. It may return a new base URL for the restarted instance (empty =
// same address). cmd/vs3load builds one from -restart-cmd; tests restart an
// in-process server.
type RestartFunc func(ctx context.Context) (newBaseURL string, err error)

// RestartResult reports the mid-test restart scenario: a full load phase,
// a daemon restart, then exactly one corpus pass against the restarted
// instance. With warm-start persistence the after-pass must look like a warm
// continuation — not a cold start — which is what Recovered encodes.
type RestartResult struct {
	Before         Result  `json:"before"`
	After          Result  `json:"after"`
	RestartSeconds float64 `json:"restart_seconds"`
	// P95Ratio is After.P95MS / Before.P95MS (0 when before is empty).
	P95Ratio float64 `json:"p95_ratio_after_over_before"`
	// QueryRate compares per-request from-scratch SMT queries across phases:
	// (After.SMTQueries/After.Requests) / (Before.SMTQueries/Before.Requests).
	// Warm persistence should push it toward zero; 1.0 means the restart
	// re-derived everything at the pre-restart rate.
	QueryRate float64 `json:"query_rate_after_over_before"`
	// Recovered reports the gate: the after pass had no incorrect verdicts or
	// transport errors, its p95 is within 1.5x of the pre-restart phase, and
	// its per-request from-scratch query rate did not exceed the pre-restart
	// rate (the restarted daemon resumed warm instead of recomputing).
	Recovered bool `json:"recovered"`
}

// RunRestart executes the restart scenario: run the load as configured,
// restart the daemon, then drive exactly one pass over the corpus and judge
// recovery. Keep-alive connections to the dead instance are discarded
// between phases.
func RunRestart(ctx context.Context, opts Options, restart RestartFunc) (RestartResult, error) {
	opts = opts.normalize()
	var res RestartResult
	before, err := Run(ctx, opts)
	if err != nil {
		return res, fmt.Errorf("before phase: %w", err)
	}
	res.Before = before

	start := time.Now()
	newURL, err := restart(ctx)
	if err != nil {
		return res, fmt.Errorf("restart: %w", err)
	}
	res.RestartSeconds = time.Since(start).Seconds()

	after := opts
	after.Requests = len(opts.Corpus) // recovery must show within one corpus pass
	if newURL != "" {
		after.BaseURL = newURL
	}
	if tr, ok := after.Client.Transport.(*http.Transport); ok {
		tr.CloseIdleConnections() // stale keep-alives point at the dead process
	}
	got, err := Run(ctx, after)
	if err != nil {
		return res, fmt.Errorf("after phase: %w", err)
	}
	res.After = got

	if before.P95MS > 0 {
		res.P95Ratio = got.P95MS / before.P95MS
	}
	beforeRate := float64(before.SMTQueries) / float64(maxInt(before.Requests, 1))
	afterRate := float64(got.SMTQueries) / float64(maxInt(got.Requests, 1))
	if beforeRate > 0 {
		res.QueryRate = afterRate / beforeRate
	}
	res.Recovered = got.Incorrect == 0 && got.Errors == 0 &&
		got.P95MS <= 1.5*before.P95MS &&
		afterRate <= beforeRate
	return res, nil
}

// WaitHealthy polls base/healthz until it answers 200 or the deadline
// passes. Shared by cmd/vs3load's -restart-cmd flow and the tests.
func WaitHealthy(ctx context.Context, client *http.Client, base string, deadline time.Duration) error {
	if client == nil {
		client = http.DefaultClient
	}
	ctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("target did not become healthy within %v", deadline)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// WriteReport prints a human-readable digest of the restart scenario.
func (r RestartResult) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "=== before restart ===\n")
	r.Before.WriteReport(w)
	fmt.Fprintf(w, "=== restart (%.2fs) ===\n", r.RestartSeconds)
	fmt.Fprintf(w, "=== after restart (one corpus pass) ===\n")
	r.After.WriteReport(w)
	fmt.Fprintf(w, "recovery      p95 ratio=%.2f query rate ratio=%.2f recovered=%v\n",
		r.P95Ratio, r.QueryRate, r.Recovered)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
