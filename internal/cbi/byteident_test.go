package cbi

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/optimal"
	"repro/internal/sat"
	"repro/internal/smt"
)

// buildPsiProg runs phases 1 and 2 of Solve (plan + emit) and returns the
// assembled ψ_Prog instance.
func buildPsiProg(t *testing.T, opts smt.Options) *sat.Solver {
	t.Helper()
	p := arrayInitProblem()
	eng := optimal.New(smt.NewSolver(opts))
	enc := &encoder{s: sat.New(), vars: map[bvar]int{}, preds: map[bvar]logic.Formula{}}
	paths := p.Paths()
	for i := range paths {
		plan, jobs := planPath(p, eng, i)
		if plan.err != nil {
			t.Fatal(plan.err)
		}
		for _, j := range jobs {
			*j.dst = eng.OptimalNegativeSolutions(j.fl.FillSolution(j.fill), j.dom)
		}
		emitPath(enc, plan)
	}
	return enc.s
}

// TestPsiProgByteIdentical: the ψ_Prog SAT instance must be byte-identical —
// same variable count, same clauses in the same order with the same literal
// numbering — whether the OptimalNegativeSolutions probes behind it went
// through incremental contexts or from-scratch solving. Incrementality may
// only change probe speed, never the supports the encoding is built from.
func TestPsiProgByteIdentical(t *testing.T) {
	inc := buildPsiProg(t, smt.Options{})
	raw := buildPsiProg(t, smt.Options{NoIncremental: true})
	if inc.NumVars() != raw.NumVars() {
		t.Fatalf("variable counts differ: incremental=%d from-scratch=%d",
			inc.NumVars(), raw.NumVars())
	}
	ci, cr := inc.Clauses(), raw.Clauses()
	if len(ci) != len(cr) {
		t.Fatalf("clause counts differ: incremental=%d from-scratch=%d", len(ci), len(cr))
	}
	for k := range ci {
		if len(ci[k]) != len(cr[k]) {
			t.Fatalf("clause %d widths differ: %v vs %v", k, ci[k], cr[k])
		}
		for j := range ci[k] {
			if ci[k][j] != cr[k][j] {
				t.Fatalf("clause %d differs: %v vs %v", k, ci[k], cr[k])
			}
		}
	}
}

// TestCFPIncrementalVsFromScratch: full Solve must land on the same verdict
// and instance shape either way.
func TestCFPIncrementalVsFromScratch(t *testing.T) {
	run := func(opts smt.Options) Result {
		p := arrayInitProblem()
		eng := optimal.New(smt.NewSolver(opts))
		res, err := Solve(p, eng, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	inc := run(smt.Options{})
	raw := run(smt.Options{NoIncremental: true})
	if inc.Found() != raw.Found() || inc.Clauses != raw.Clauses || inc.Vars != raw.Vars {
		t.Fatalf("CFP diverged: incremental=%+v from-scratch=%+v", inc, raw)
	}
	if inc.Found() && inc.Solution.Key() != raw.Solution.Key() {
		t.Fatalf("solutions differ: %v vs %v", inc.Solution, raw.Solution)
	}
}
