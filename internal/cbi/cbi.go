// Package cbi implements the constraint-based fixed-point algorithm of §5:
// the verification condition of the whole program is encoded as a boolean
// formula ψ_Prog over indicator variables b_{v,q} ("predicate q is chosen
// for unknown v"), built from OptimalNegativeSolutions calls, and solved
// with the CDCL SAT solver. A satisfying assignment decodes to a candidate
// invariant solution, which is re-verified against the SMT solver; failed
// candidates are blocked and the SAT search resumes, so the returned
// solution always validates VC(Prog, σ).
package cbi

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/optimal"
	"repro/internal/par"
	"repro/internal/sat"
	"repro/internal/spec"
	"repro/internal/ssa"
	"repro/internal/stats"
	"repro/internal/template"
)

// Options bounds a constraint-based run.
type Options struct {
	// MaxModels bounds how many SAT models are decoded and re-verified
	// before giving up (default 64).
	MaxModels int
	// Stop, when non-nil, is polled between encoding steps and SAT models;
	// returning true abandons the run.
	Stop func() bool
	// Stats optionally records Figure 9 SAT formula sizes.
	Stats *stats.Collector
	// Parallel is the number of OptimalNegativeSolutions jobs (the calls
	// that dominate encoding time, flattened across all paths' base and
	// positive cases) computed concurrently (default
	// runtime.GOMAXPROCS(0)). Clauses are always assembled sequentially in
	// path order, so the SAT instance is identical regardless of scheduling.
	Parallel int
}

func (o Options) normalize() Options {
	if o.MaxModels == 0 {
		o.MaxModels = 64
	}
	o.Parallel = par.Workers(o.Parallel)
	return o
}

// Result reports the outcome of a constraint-based run.
type Result struct {
	// Solution is the invariant solution found (nil if none).
	Solution template.Solution
	// Clauses and Vars describe the ψ_Prog SAT instance (Figure 9).
	Clauses, Vars int
	// Models is the number of SAT models examined.
	Models int
	// Truncated reports that the model search stopped at MaxModels with the
	// SAT instance still satisfiable: more candidate assignments existed but
	// were never decoded, so a nil Solution is not evidence of absence.
	Truncated bool
	// Aborted reports that Options.Stop fired and the run was abandoned
	// early (during encoding or between SAT models).
	Aborted bool
}

// Found reports whether an invariant solution was discovered.
func (r Result) Found() bool { return r.Solution != nil }

// bvar identifies an indicator variable b_{v,q} by unknown name and the
// interned identity of the (original-variable) predicate. Interned handles
// are pointer-unique per structure, so this keys exactly like the canonical
// string form did, without serializing the predicate on every lookup.
type bvar struct {
	unknown string
	pred    *logic.IFormula
}

// encoder accumulates ψ_Prog.
type encoder struct {
	s     *sat.Solver
	vars  map[bvar]int
	preds map[bvar]logic.Formula // remembers the predicate for decoding
}

func (e *encoder) vidx(u string, p logic.Formula) int {
	k := bvar{unknown: u, pred: logic.Intern(p)}
	if v, ok := e.vars[k]; ok {
		return v
	}
	v := e.s.NewVar()
	e.vars[k] = v
	e.preds[k] = p
	return v
}

// Solve runs the constraint-based algorithm on a problem.
func Solve(p *spec.Problem, eng *optimal.Engine, opts Options) (Result, error) {
	opts = opts.normalize()
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	enc := &encoder{s: sat.New(), vars: map[bvar]int{}, preds: map[bvar]logic.Formula{}}

	// Phase 1 (sequential, cheap): per-path setup — renamings, polarity
	// splits, vocabulary domains, compiled fillers — plus one job descriptor
	// per OptimalNegativeSolutions call the path needs.
	paths := p.Paths()
	plans := make([]*pathPlan, len(paths))
	var jobs []negJob
	for i := range paths {
		plan, pjobs := planPath(p, eng, i)
		if plan.err != nil {
			return Result{}, fmt.Errorf("cbi: path %s->%s: %w", paths[i].From, paths[i].To, plan.err)
		}
		plans[i] = plan
		jobs = append(jobs, pjobs...)
	}
	// Phase 2 (parallel): the OptimalNegativeSolutions calls that dominate
	// encoding time. Every path's base case and positive cases are flattened
	// into one job list, so the worker pool load-balances across paths
	// instead of stalling on the path with the most cases.
	par.ForEach(len(jobs), opts.Parallel, func(k int) {
		if opts.Stop != nil && opts.Stop() {
			return
		}
		j := jobs[k]
		*j.dst = eng.OptimalNegativeSolutions(j.fl.FillSolution(j.fill), j.dom)
	})
	if opts.Stop != nil && opts.Stop() {
		return Result{Aborted: true}, nil
	}
	// Phase 3 (sequential, path order): emit clauses. Assembly order is
	// fixed by the path order, so the SAT instance — variable numbering
	// included — is byte-identical to a sequential encoding.
	for _, plan := range plans {
		emitPath(enc, plan)
	}
	res := Result{Clauses: enc.s.NumClauses(), Vars: enc.s.NumVars()}
	opts.Stats.RecordSATSize(res.Clauses, res.Vars)

	// Enumerate models, decode, and re-verify until one candidate passes
	// the full VC(Prog, σ) check.
	for res.Models < opts.MaxModels {
		if opts.Stop != nil && opts.Stop() {
			res.Aborted = true
			return res, nil
		}
		if enc.s.Solve() != sat.Sat {
			// The blocked instance is unsatisfiable: the indicator space is
			// genuinely exhausted, a definite negative.
			return res, nil
		}
		res.Models++
		sigma := decode(p, enc)
		if ok, _ := p.CheckAll(eng.S, sigma); ok {
			res.Solution = sigma
			return res, nil
		}
		// A candidate that fails re-verification after Stop fired may be a
		// conservative solver verdict, not a real counterexample; report the
		// run as aborted rather than blocking on bogus evidence.
		if opts.Stop != nil && opts.Stop() {
			res.Aborted = true
			return res, nil
		}
		// Block this exact assignment of the indicator variables.
		blocking := make([]sat.Lit, 0, len(enc.vars))
		for _, v := range sortedVarIdxs(enc) {
			blocking = append(blocking, sat.MkLit(v, enc.s.Value(v)))
		}
		if !enc.s.AddClause(blocking...) {
			return res, nil
		}
	}
	// The loop can only fall through by hitting MaxModels with the instance
	// still satisfiable: candidate assignments remain undecoded.
	res.Truncated = true
	return res, nil
}

func sortedVarIdxs(enc *encoder) []int {
	out := make([]int, 0, len(enc.vars))
	for _, v := range enc.vars {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// pathPlan holds everything one path contributes to ψ_Prog, computed
// without touching the shared encoder so paths can be planned in parallel.
type pathPlan struct {
	err error
	// t1Unknowns / orig / inv translate φ-level solutions back to original
	// unknowns and original-variable predicates during emission.
	t1Unknowns map[string]bool
	orig       map[string]string
	inv        ssa.Renaming
	// base is S_{δ,τ1,τ2}: the optimal negative supports with every
	// positive unknown empty.
	base []template.Solution
	// posCases holds one cover per (positive unknown, predicate) choice.
	posCases []posCase
}

// posCase is one b_{v,q} ⇒ ∨ BC(S^{ρ,q}) implication awaiting emission.
type posCase struct {
	ou   string        // original unknown name
	oq   logic.Formula // original-variable predicate (the b_{v,q} guard)
	sols []template.Solution
}

// negJob is one deferred OptimalNegativeSolutions call: fill the path's
// compiled VC skeleton with a positive-side choice and write the optimal
// negative supports into its plan slot. Jobs from every path go through one
// shared worker pool; the Filler is immutable, so concurrent jobs on the
// same path are safe.
type negJob struct {
	fl   *template.Filler
	fill template.Solution
	dom  template.Domain
	dst  *[]template.Solution
}

// planPath computes ψ_{δ,τ1,τ2,σt}'s ingredients for one path (§5.2): the
// renaming data needed to translate solutions back to original unknowns,
// plus one negJob per optimal-support computation (the base case and each
// (unknown, predicate) positive case). It is index-based so the VC is built
// through the problem's compiled skeleton and the fills reuse the engine's
// compiled filler for φ.
func planPath(p *spec.Problem, eng *optimal.Engine, pi int) (*pathPlan, []negJob) {
	path := p.Paths()[pi]
	t1 := p.TemplateAt(path.From)
	t2 := p.TemplateAt(path.To)

	// Rename τ2's unknowns when both ends share the template (loop paths),
	// keeping the orig mapping back to the original unknown names.
	orig := map[string]string{}
	for _, u := range logic.Unknowns(t1) {
		orig[u] = u
	}
	t2r := t2
	if sharesUnknowns(t1, t2) {
		ren := map[string]string{}
		for _, u := range logic.Unknowns(t2) {
			ren[u] = u + "@post"
		}
		t2r = template.RenameUnknowns(t2, ren)
		for u, ru := range ren {
			orig[ru] = u
		}
	} else {
		for _, u := range logic.Unknowns(t2) {
			orig[u] = u
		}
	}
	// τ2 lives over the path's SSA exit variables.
	t2ssa := path.Sigma.Apply(t2r)
	phi := p.VCAt(pi, t1, t2ssa)

	pol, err := template.Polarities(phi)
	if err != nil {
		return &pathPlan{err: err}, nil
	}
	pos, neg := template.Split(pol)

	// fromUnknown reports whether an unknown of φ came from τ1 (original
	// variables) rather than τ2 (σt-renamed variables).
	t1Unknowns := map[string]bool{}
	for _, u := range logic.Unknowns(t1) {
		t1Unknowns[u] = true
	}
	inv := path.Sigma.Inverse()

	// Q′: the vocabulary of each unknown of φ, renamed for τ2-side unknowns.
	qp := template.Domain{}
	for _, u := range append(append([]string(nil), pos...), neg...) {
		base := p.Q[orig[u]]
		if t1Unknowns[u] {
			qp[u] = base
		} else {
			renamed := make([]logic.Formula, len(base))
			for i, q := range base {
				renamed[i] = path.Sigma.Apply(q)
			}
			qp[u] = renamed
		}
	}
	negDomain := template.Domain{}
	for _, n := range neg {
		negDomain[n] = qp[n]
	}

	emptyPos := template.Solution{}
	for _, r := range pos {
		emptyPos[r] = template.NewPredSet()
	}
	plan := &pathPlan{t1Unknowns: t1Unknowns, orig: orig, inv: inv}

	// All positive-case fills instantiate the same φ, so they share the
	// engine's compiled filler for it.
	fl := eng.Filler(phi)

	// Base case: S_{δ,τ1,τ2} with every positive unknown empty; at least one
	// optimal negative support must be chosen.
	jobs := []negJob{{fl: fl, fill: emptyPos, dom: negDomain}}

	// Positive cases: b_{orig(ρ),q·σt⁻¹} ⇒ ∨ BC(S^{ρ,q}).
	for _, r := range pos {
		for qi, q := range qp[r] {
			posPart := emptyPos.Clone()
			posPart[r] = template.NewPredSet(q)
			plan.posCases = append(plan.posCases, posCase{ou: orig[r], oq: p.Q[orig[r]][qi]})
			jobs = append(jobs, negJob{fl: fl, fill: posPart, dom: negDomain})
		}
	}
	// Destinations are wired up only once posCases has stopped growing, so
	// the pointers survive the appends above.
	jobs[0].dst = &plan.base
	for i := range plan.posCases {
		jobs[i+1].dst = &plan.posCases[i].sols
	}
	return plan, jobs
}

// emitPath adds a planned path's clauses to the SAT instance. Only this
// phase touches the shared encoder; it runs sequentially in path order.
func emitPath(enc *encoder, plan *pathPlan) {
	// bc maps a solution over φ's unknowns to blocking literals over
	// original unknowns and original-variable predicates.
	bc := func(sol template.Solution) []sat.Lit {
		var lits []sat.Lit
		for u, ps := range sol {
			ou, ops := plan.orig[u], ps
			if !plan.t1Unknowns[u] {
				ops = ps.Rename(plan.inv)
			}
			for _, q := range ops.Preds() {
				lits = append(lits, sat.MkLit(enc.vidx(ou, q), false))
			}
		}
		sort.Slice(lits, func(i, j int) bool { return lits[i] < lits[j] })
		return lits
	}
	addCover(enc, nil, plan.base, bc)
	for _, pc := range plan.posCases {
		guard := sat.MkLit(enc.vidx(pc.ou, pc.oq), true) // ¬b ∨ cover
		addCover(enc, []sat.Lit{guard}, pc.sols, bc)
	}
}

// addCover encodes guard ⇒ (∨_{t∈sols} BC(t)) by introducing one selector
// variable per disjunct.
func addCover(enc *encoder, guard []sat.Lit, sols []template.Solution, bc func(template.Solution) []sat.Lit) {
	if len(sols) == 0 {
		// No support: the guard must be false (or, with no guard, the whole
		// instance is unsatisfiable).
		if len(guard) == 0 {
			enc.s.AddClause() // empty clause
			return
		}
		enc.s.AddClause(guard...)
		return
	}
	clause := append([]sat.Lit(nil), guard...)
	for _, sol := range sols {
		lits := bc(sol)
		if len(lits) == 0 {
			// An empty support (σ maps every negative to ∅) is trivially
			// chosen: the implication is satisfied outright.
			return
		}
		if len(lits) == 1 {
			clause = append(clause, lits[0])
			continue
		}
		sel := enc.s.NewVar()
		selLit := sat.MkLit(sel, false)
		for _, l := range lits {
			enc.s.AddClause(selLit.Not(), l)
		}
		clause = append(clause, selLit)
	}
	enc.s.AddClause(clause...)
}

// decode reads the model into a solution over the original unknowns.
func decode(p *spec.Problem, enc *encoder) template.Solution {
	sigma := template.Solution{}
	for _, u := range p.Unknowns() {
		sigma[u] = template.NewPredSet()
	}
	for k, v := range enc.vars {
		if enc.s.Value(v) {
			sigma[k.unknown] = sigma[k.unknown].Add(enc.preds[k])
		}
	}
	return sigma
}

func sharesUnknowns(t1, t2 logic.Formula) bool {
	u1 := map[string]bool{}
	for _, u := range logic.Unknowns(t1) {
		u1[u] = true
	}
	for _, u := range logic.Unknowns(t2) {
		if u1[u] {
			return true
		}
	}
	return false
}
