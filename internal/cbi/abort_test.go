package cbi

import (
	"testing"

	"repro/internal/optimal"
	"repro/internal/smt"
	"repro/internal/stats"
)

// TestStopAbortsBeforeModelLoop: with Stop already firing, Solve must bail
// out after the encoding phase and report Aborted, not run the model loop
// and report a (conservative, bogus) definite negative.
func TestStopAbortsBeforeModelLoop(t *testing.T) {
	p := arrayInitProblem()
	eng := optimal.New(smt.NewSolver(smt.Options{}))
	res, err := Solve(p, eng, Options{Stop: func() bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Error("Stop fired but Aborted=false")
	}
	if res.Found() {
		t.Errorf("found a solution under an always-true Stop: %v", res.Solution)
	}
	if res.Models != 0 {
		t.Errorf("examined %d models after Stop", res.Models)
	}
}

// TestStopAbortsModelLoop arms Stop only once the ψ_Prog instance has been
// built (RecordSATSize runs between the encoding and the model loop), so the
// abort is exercised at the loop's own poll point.
func TestStopAbortsModelLoop(t *testing.T) {
	p := arrayInitProblem()
	col := stats.New()
	eng := optimal.New(smt.NewSolver(smt.Options{}))
	stop := func() bool { return col.Snapshot().SATFormulas > 0 }
	res, err := Solve(p, eng, Options{Stop: stop, Stats: col})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Aborted {
		t.Error("Stop fired during the model loop but Aborted=false")
	}
	if res.Clauses == 0 || res.Vars == 0 {
		t.Errorf("encoding should have completed before the abort, got %d clauses %d vars",
			res.Clauses, res.Vars)
	}
	if res.Found() {
		t.Errorf("found a solution after the abort: %v", res.Solution)
	}
}

// TestCleanRunNotFlagged guards against Aborted/Truncated leaking into a
// healthy bounded run.
func TestCleanRunNotFlagged(t *testing.T) {
	p := arrayInitProblem()
	eng := optimal.New(smt.NewSolver(smt.Options{}))
	res, err := Solve(p, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("CFP should prove array init")
	}
	if res.Truncated || res.Aborted {
		t.Errorf("clean run flagged truncated=%v aborted=%v", res.Truncated, res.Aborted)
	}
}
