package cbi

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/optimal"
	"repro/internal/predabs"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/template"
)

func arrayInitProblem() *spec.Problem {
	prog := lang.MustParse(`
		program ArrayInit(array A, n) {
			i := 0;
			while loop (i < n) {
				A[i] := 0;
				i := i + 1;
			}
			assert(forall j. (0 <= j && j < n) => A[j] = 0);
		}`)
	tmpl := logic.All([]string{"j"},
		logic.Imp(logic.Unknown{Name: "v"}, logic.EqF(logic.Sel(logic.AV("A"), logic.V("j")), logic.I(0))))
	return &spec.Problem{
		Prog:      prog,
		Templates: map[string]logic.Formula{"loop": tmpl},
		Q:         template.Domain{"v": predabs.QjV("j", []string{"0", "i", "n"})},
	}
}

func TestArrayInitCFP(t *testing.T) {
	p := arrayInitProblem()
	eng := optimal.New(smt.NewSolver(smt.Options{}))
	res, err := Solve(p, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatalf("CFP found no invariant (models examined: %d)", res.Models)
	}
	if ok, fail := p.CheckAll(eng.S, res.Solution); !ok {
		t.Fatalf("CFP returned non-invariant %v; failing path %v", res.Solution, fail)
	}
	if res.Clauses == 0 || res.Vars == 0 {
		t.Errorf("expected a nonempty SAT instance, got %d clauses %d vars", res.Clauses, res.Vars)
	}
	t.Logf("CFP clauses=%d vars=%d models=%d solution v -> %s",
		res.Clauses, res.Vars, res.Models, res.Solution["v"])
}

func TestArrayInitCFPNoSolutionWithoutPredicates(t *testing.T) {
	p := arrayInitProblem()
	p.Q = template.Domain{"v": predabs.QjV("j", []string{"n"})}
	eng := optimal.New(smt.NewSolver(smt.Options{}))
	res, err := Solve(p, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() {
		t.Fatalf("CFP should fail without i-comparisons, got %v", res.Solution)
	}
}
