package cbi

import (
	"testing"

	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/optimal"
	"repro/internal/smt"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/template"
)

func newEngine() *optimal.Engine { return optimal.New(smt.NewSolver(smt.Options{})) }

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.MaxModels != 64 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestStatsRecordSATSize(t *testing.T) {
	p := arrayInitProblem()
	eng := newEngine()
	c := stats.New()
	res, err := Solve(p, eng, Options{Stats: c})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatal("not proved")
	}
	clauses, vars := c.SATSizes()
	if len(clauses) != 1 || clauses[0] != res.Clauses || vars[0] != res.Vars {
		t.Errorf("stats = %v/%v, result = %d/%d", clauses, vars, res.Clauses, res.Vars)
	}
	// Figure 9's claim: the encoding stays small (paper: < 500 clauses).
	if res.Clauses >= 500 {
		t.Errorf("ψ_Prog has %d clauses; the paper's bound is 500", res.Clauses)
	}
}

func TestValidationErrorPropagates(t *testing.T) {
	p := arrayInitProblem()
	p.Q = template.Domain{}
	if _, err := Solve(p, newEngine(), Options{}); err == nil {
		t.Error("expected validation error")
	}
}

// TestUnknownsAcrossTwoTemplates exercises the orig-mapping machinery when
// source and target templates differ (no renaming needed) and when they are
// the same (loop paths rename τ2's unknowns).
func TestUnknownsAcrossTwoTemplates(t *testing.T) {
	prog := lang.MustParse(`
		program TwoPhase(array A, n) {
			i := 0;
			while first (i < n) {
				A[i] := 5;
				i := i + 1;
			}
			i := 0;
			while second (i < n) {
				A[i] := 0;
				i := i + 1;
			}
			assert(forall j. (0 <= j && j < n) => A[j] = 0);
		}`)
	mk := lang.MustParseFormula
	qs := []logic.Formula{mk("0 <= j"), mk("j < i"), mk("j < n"), mk("j < 0")}
	p := &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"first":  mk("forall j. ?a => A[j] = 5"),
			"second": mk("forall j. ?b => A[j] = 0"),
		},
		Q: template.Domain{"a": qs, "b": qs},
	}
	eng := newEngine()
	res, err := Solve(p, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found() {
		t.Fatalf("two-template CFP failed (models=%d)", res.Models)
	}
	if ok, fail := p.CheckAll(eng.S, res.Solution); !ok {
		t.Errorf("decoded solution invalid at %v", fail)
	}
}

// TestDecodedSolutionIsReverified ensures CFP never returns a solution that
// fails VC(Prog, σ): when predicates cannot prove the program, it reports
// not-found rather than a bogus solution.
func TestDecodedSolutionIsReverified(t *testing.T) {
	p := arrayInitProblem()
	p.Q = template.Domain{"v": {lang.MustParseFormula("j < n"), lang.MustParseFormula("j <= n")}}
	eng := newEngine()
	res, err := Solve(p, eng, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() {
		if ok, fail := p.CheckAll(eng.S, res.Solution); !ok {
			t.Fatalf("returned invalid solution %v (fails %v)", res.Solution, fail)
		}
	}
}

func TestSharesUnknowns(t *testing.T) {
	a := logic.Unknown{Name: "a"}
	b := logic.Unknown{Name: "b"}
	if !sharesUnknowns(a, logic.Conj(b, a)) {
		t.Error("shared unknown not detected")
	}
	if sharesUnknowns(a, b) {
		t.Error("false positive")
	}
}
