package cbi

import (
	"testing"
)

// TestParallelEncodingMatchesSequential requires the parallel ψ_Prog
// encoder to produce the exact SAT instance of the sequential one — same
// clause and variable counts, same decoded solution — since clauses are
// assembled in path order no matter how the planning phase is scheduled.
func TestParallelEncodingMatchesSequential(t *testing.T) {
	seq, err := Solve(arrayInitProblem(), newEngine(), Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{2, 4, 8} {
		par, err := Solve(arrayInitProblem(), newEngine(), Options{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if par.Clauses != seq.Clauses || par.Vars != seq.Vars {
			t.Errorf("parallel=%d: SAT instance %d clauses/%d vars, sequential %d/%d",
				parallel, par.Clauses, par.Vars, seq.Clauses, seq.Vars)
		}
		if par.Found() != seq.Found() {
			t.Errorf("parallel=%d: found=%v, sequential found=%v", parallel, par.Found(), seq.Found())
		}
		if seq.Found() && par.Solution.Key() != seq.Solution.Key() {
			t.Errorf("parallel=%d: solution %s, sequential %s", parallel, par.Solution, seq.Solution)
		}
	}
}

// TestParallelEncodingDeterministic re-runs the parallel encoder and
// requires byte-identical instances across repetitions.
func TestParallelEncodingDeterministic(t *testing.T) {
	var clauses, vars int
	var key string
	for round := 0; round < 3; round++ {
		res, err := Solve(arrayInitProblem(), newEngine(), Options{Parallel: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found() {
			t.Fatal("no solution found")
		}
		if round == 0 {
			clauses, vars, key = res.Clauses, res.Vars, res.Solution.Key()
			continue
		}
		if res.Clauses != clauses || res.Vars != vars || res.Solution.Key() != key {
			t.Errorf("round %d: (%d clauses, %d vars, %s) differs from round 0 (%d, %d, %s)",
				round, res.Clauses, res.Vars, res.Solution.Key(), clauses, vars, key)
		}
	}
}

// TestParallelStopReturnsCleanly checks the Stop contract through the
// parallel planning phase.
func TestParallelStopReturnsCleanly(t *testing.T) {
	res, err := Solve(arrayInitProblem(), newEngine(), Options{Parallel: 4, Stop: func() bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found() {
		t.Error("stopped run claimed a solution")
	}
}
