package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lia"
)

// fillT writes a representative mix of records through the append API and
// returns the expected content checks as a func.
func fillT(t *testing.T, s *Store, n int) func(*testing.T, *Store) {
	t.Helper()
	for i := 0; i < n; i++ {
		s.AppendVerdict(fmt.Sprintf("f%d", i), i%2 == 0)
		s.AppendConsistency(fmt.Sprintf("g%d", i), i%3 == 0)
		s.AppendOutcome(fmt.Sprintf("prob%d", i), "optimal", []byte(fmt.Sprintf(`{"proved":true,"i":%d}`, i)))
	}
	s.AppendLemma("skel-a", Lemma{
		Lins: []lia.Lin{mkLin(3, map[string]int64{"x": 1, "y": -2}), mkLin(-1, nil)},
		Vals: []bool{true, false},
	})
	s.AppendCore(Core{Unknown: "I", Preds: []string{"p1", "p2"}})
	return func(t *testing.T, r *Store) {
		t.Helper()
		for i := 0; i < n; i++ {
			if v, ok := r.Verdict(fmt.Sprintf("f%d", i)); !ok || v != (i%2 == 0) {
				t.Fatalf("verdict f%d = %v,%v", i, v, ok)
			}
			if v, ok := r.Consistency(fmt.Sprintf("g%d", i)); !ok || v != (i%3 == 0) {
				t.Fatalf("consistency g%d = %v,%v", i, v, ok)
			}
			want := fmt.Sprintf(`{"proved":true,"i":%d}`, i)
			if b, ok := r.Outcome(fmt.Sprintf("prob%d", i), "optimal"); !ok || string(b) != want {
				t.Fatalf("outcome prob%d = %q,%v", i, b, ok)
			}
		}
		if len(r.Lemmas("skel-a")) != 1 {
			t.Fatalf("lemmas = %d, want 1", len(r.Lemmas("skel-a")))
		}
		if len(r.Cores()) != 1 {
			t.Fatalf("cores = %d, want 1", len(r.Cores()))
		}
	}
}

// duplicateLog rewrites the log so its record body (everything after the
// header line) appears copies times — the duplicate-heavy shape a
// pre-compaction fleet accumulates across lifetimes of re-learned records.
func duplicateLog(t *testing.T, dir string, copies int) {
	t.Helper()
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		t.Fatal("no header line")
	}
	hdr, body := data[:nl+1], data[nl+1:]
	out := append([]byte(nil), hdr...)
	for i := 0; i < copies; i++ {
		out = append(out, body...)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func logSize(t *testing.T, dir string) int64 {
	t.Helper()
	fi, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func noCorrupt(t *testing.T, dir string) {
	t.Helper()
	if _, err := os.Stat(filepath.Join(dir, logName+".corrupt")); err == nil {
		t.Fatal("store sidelined a .corrupt file; compaction crash states must load cleanly")
	}
}

// TestCompactShrinksDuplicateHeavyLog is the core compaction property: a log
// holding the same record set four times over compacts to roughly one copy
// (>=3x smaller) with identical content before and after, across a reopen.
func TestCompactShrinksDuplicateHeavyLog(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "p")
	check := fillT(t, s, 50)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	duplicateLog(t, dir, 4)
	before := logSize(t, dir)

	s = openT(t, dir, "p")
	check(t, s)
	st := s.Stats()
	if st.LiveBytes >= st.LogBytes {
		t.Fatalf("duplicate-heavy log not detected: live=%d log=%d", st.LiveBytes, st.LogBytes)
	}
	reclaimed, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if reclaimed <= 0 {
		t.Fatalf("reclaimed = %d", reclaimed)
	}
	after := logSize(t, dir)
	if after*3 > before {
		t.Fatalf("compaction shrank %d -> %d bytes; want >=3x", before, after)
	}
	st = s.Stats()
	if st.Compactions != 1 || st.ReclaimedBytes != reclaimed {
		t.Fatalf("stats after compact: %+v", st)
	}
	check(t, s) // content intact in the running store

	// The compacted generation must also be the durable truth.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, dir, "p")
	defer r.Close()
	if r.Stats().ColdStart {
		t.Fatal("compacted store reported cold start")
	}
	check(t, r)
	noCorrupt(t, dir)
}

// TestCompactConcurrentWithAppends drives appends from several goroutines
// while compactions run; every record accepted before Close must survive the
// generation swaps (writes during a rewrite land in the queue and are
// replayed onto the new generation).
func TestCompactConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "p")
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.AppendVerdict(fmt.Sprintf("w%d-f%d", w, i), true)
				s.AppendOutcome(fmt.Sprintf("w%d-p%d", w, i), "optimal", []byte(`{"proved":true}`))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if _, err := s.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openT(t, dir, "p")
	defer r.Close()
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if _, ok := r.Verdict(fmt.Sprintf("w%d-f%d", w, i)); !ok {
				t.Fatalf("verdict w%d-f%d lost across compactions", w, i)
			}
			if _, ok := r.Outcome(fmt.Sprintf("w%d-p%d", w, i), "optimal"); !ok {
				t.Fatalf("outcome w%d-p%d lost across compactions", w, i)
			}
		}
	}
	noCorrupt(t, dir)
}

// TestCompactCrashRecovery injects a crash at every compaction stage (via the
// compactHook seam, which aborts leaving exactly the on-disk state a kill
// there would) and asserts the store reloads cleanly — full content, no
// .corrupt sideline — from whichever generation survived.
func TestCompactCrashRecovery(t *testing.T) {
	for _, stage := range []string{stageFlushed, stageTmpWritten, stageRenamed} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir, "p")
			check := fillT(t, s, 30)
			s.Close()
			duplicateLog(t, dir, 3)

			s = openT(t, dir, "p")
			check(t, s)
			s.compactHook = func(at string) bool { return at == stage }
			if _, err := s.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
			// Simulate the kill: abandon the handle without Close (no final
			// flush, no tidy-up), exactly as a crashed process would.
			s.file.Close()

			r := openT(t, dir, "p")
			defer r.Close()
			if r.Stats().ColdStart {
				t.Fatalf("crash at %s: store started cold", stage)
			}
			check(t, r)
			noCorrupt(t, dir)
			if _, err := os.Stat(filepath.Join(dir, tmpName)); err == nil {
				t.Fatalf("crash at %s: stale %s survived reopen", stage, tmpName)
			}
		})
	}
}

// TestCompactStaleTmpStates covers the on-disk states around the rename that
// the hook cannot produce byte-for-byte: a torn half-written .tmp beside an
// intact log, and a completed rename with a stale .tmp from a later
// interrupted compaction.
func TestCompactStaleTmpStates(t *testing.T) {
	t.Run("torn tmp beside intact log", func(t *testing.T) {
		dir := t.TempDir()
		s := openT(t, dir, "p")
		check := fillT(t, s, 20)
		s.Close()
		data, _ := os.ReadFile(filepath.Join(dir, logName))
		if err := os.WriteFile(filepath.Join(dir, tmpName), data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		r := openT(t, dir, "p")
		defer r.Close()
		check(t, r)
		noCorrupt(t, dir)
	})
	t.Run("renamed generation with stale tmp", func(t *testing.T) {
		dir := t.TempDir()
		s := openT(t, dir, "p")
		check := fillT(t, s, 20)
		s.Close()
		// The log IS the post-rename new generation; a stale tmp holds
		// arbitrary torn bytes from an interrupted later compaction.
		if err := os.WriteFile(filepath.Join(dir, tmpName), []byte("torn garbage, no header"), 0o644); err != nil {
			t.Fatal(err)
		}
		r := openT(t, dir, "p")
		defer r.Close()
		check(t, r)
		noCorrupt(t, dir)
	})
}

// TestCompactAutoTrigger pins the flusher-side threshold: once the log
// crosses CompactMinBytes with more than CompactGarbageRatio garbage, the
// flusher compacts without any caller intervention.
func TestCompactAutoTrigger(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "p")
	check := fillT(t, s, 40)
	s.Close()
	duplicateLog(t, dir, 4)
	before := logSize(t, dir)

	s2, err := Open(dir, Options{
		Params:          "p",
		FlushInterval:   5 * time.Millisecond,
		CompactMinBytes: 1024,
		Logf:            t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s2.Stats().Compactions >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := s2.Stats()
	if st.Compactions < 1 {
		t.Fatalf("auto-compaction never triggered: %+v", st)
	}
	if after := logSize(t, dir); after >= before {
		t.Fatalf("auto-compaction did not shrink log: %d -> %d", before, after)
	}
	check(t, s2)
}

// TestCompactHeaderRecheck pins the pre-rename safety check: if the log on
// disk is no longer a header/params match for this store, compaction must
// refuse to rename over it.
func TestCompactHeaderRecheck(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "p")
	fillT(t, s, 5)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Swap the on-disk log for one owned by a different configuration.
	other := t.TempDir()
	o := openT(t, other, "other-params")
	o.AppendVerdict("foreign", true)
	o.Close()
	data, _ := os.ReadFile(filepath.Join(other, logName))
	if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err == nil || !strings.Contains(err.Error(), "header re-check") {
		t.Fatalf("Compact over foreign log: err = %v, want header re-check failure", err)
	}
	if s.Stats().CompactErrors != 1 {
		t.Fatalf("CompactErrors = %d, want 1", s.Stats().CompactErrors)
	}
	s.file.Close() // abandon; the on-disk state belongs to the foreign store now
}

// TestOutcomeDigest covers the bloom digest surface: membership of every
// solved problem key, a bounded false-positive rate, generation bumps on
// change, and wire-form round-tripping.
func TestOutcomeDigest(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "p")
	defer s.Close()

	enc, gen := s.OutcomeDigest()
	if enc != "" {
		t.Fatalf("empty store digest = %q, want \"\"", enc)
	}
	if d, err := ParseBloomDigest(enc); err != nil || d.Contains("anything") {
		t.Fatalf("empty digest parse = %v, %v", d, err)
	}

	const n = 200
	for i := 0; i < n; i++ {
		s.AppendOutcome(fmt.Sprintf("key-%d", i), "optimal", []byte(`{"proved":true}`))
	}
	enc2, gen2 := s.OutcomeDigest()
	if gen2 <= gen {
		t.Fatalf("digest generation did not advance: %d -> %d", gen, gen2)
	}
	d, err := ParseBloomDigest(enc2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !d.Contains(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("digest missing key-%d (bloom filters cannot have false negatives)", i)
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if d.Contains(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	if fp > 200 { // 2%; the design point is ~0.3%
		t.Fatalf("false-positive rate too high: %d/10000", fp)
	}

	// A second method on an existing problem key changes nothing the digest
	// tracks beyond its generation; an unchanged store returns the cached
	// digest and generation.
	enc3, gen3 := s.OutcomeDigest()
	if enc3 != enc2 || gen3 != gen2 {
		t.Fatalf("stable store changed digest: gen %d -> %d", gen2, gen3)
	}

	// The digest survives a reopen (rebuilt from the loaded outcomes).
	s.Close()
	r := openT(t, dir, "p")
	defer r.Close()
	rEnc, _ := r.OutcomeDigest()
	rd, err := ParseBloomDigest(rEnc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !rd.Contains(fmt.Sprintf("key-%d", i)) {
			t.Fatalf("reopened digest missing key-%d", i)
		}
	}
}
