package store

import (
	"encoding/base64"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// The outcome digest is a bloom filter over the problem keys this store holds
// solved outcomes for, compact enough to ship in /v1/stats and over the rpc
// surface. The router uses it to prefer a backend that already has a
// problem's knowledge over the plain ring owner. False positives only cost a
// wasted preference (the backend computes from scratch like any other);
// false negatives cannot happen, so a digest miss never hides warm state the
// ring owner would have found.
//
// Wire format: "b1:<k>:<mbits>:<base64url-nopad bits>", where k is the probe
// count and mbits the filter width in bits. An empty string means "no
// digest" (no solved outcomes, or a peer too old to serve one) and claims no
// keys.

const (
	bloomBitsPerKey = 12 // with k=8 probes: ~0.3% false-positive rate
	bloomProbes     = 8
	bloomMinBits    = 64
)

// digestCache is the store's lazily rebuilt outcome digest. gen increments on
// every accepted outcome append (and once at load), so consumers can poll
// generation cheaply and refetch the encoded digest only on change.
type digestCache struct {
	genCtr   atomic.Uint64
	mu       sync.Mutex
	builtGen uint64
	encoded  string
}

func (d *digestCache) bump() { d.genCtr.Add(1) }

// DigestGen returns the outcome-digest generation: it changes exactly when
// the set of solved problem keys may have changed.
func (s *Store) DigestGen() uint64 {
	if s == nil {
		return 0
	}
	return s.digest.genCtr.Load()
}

// OutcomeDigest returns the bloom digest of the problem keys with persisted
// outcomes, plus the generation it reflects. The digest is rebuilt lazily on
// generation change and cached.
func (s *Store) OutcomeDigest() (string, uint64) {
	if s == nil {
		return "", 0
	}
	gen := s.digest.genCtr.Load()
	s.digest.mu.Lock()
	if s.digest.builtGen == gen && gen != 0 {
		enc := s.digest.encoded
		s.digest.mu.Unlock()
		return enc, gen
	}
	s.digest.mu.Unlock()

	s.mu.RLock()
	keys := make(map[string]struct{}, len(s.outcomes))
	for k := range s.outcomes {
		if pk, _, ok := cutNul(k); ok {
			keys[pk] = struct{}{}
		}
	}
	s.mu.RUnlock()
	enc := buildBloom(keys)

	s.digest.mu.Lock()
	if gen >= s.digest.builtGen {
		s.digest.builtGen = gen
		s.digest.encoded = enc
	}
	s.digest.mu.Unlock()
	return enc, gen
}

// buildBloom encodes the key set as the digest wire form; empty set encodes
// as "" (claims nothing).
func buildBloom(keys map[string]struct{}) string {
	if len(keys) == 0 {
		return ""
	}
	mbits := uint64(len(keys) * bloomBitsPerKey)
	if mbits < bloomMinBits {
		mbits = bloomMinBits
	}
	mbits = (mbits + 7) &^ 7 // whole bytes
	bits := make([]byte, mbits/8)
	for k := range keys {
		h1, h2 := bloomHashes(k)
		for i := uint64(0); i < bloomProbes; i++ {
			bit := (h1 + i*h2) % mbits
			bits[bit/8] |= 1 << (bit % 8)
		}
	}
	return fmt.Sprintf("b1:%d:%d:%s", bloomProbes, mbits,
		base64.RawURLEncoding.EncodeToString(bits))
}

// bloomHashes derives the double-hashing pair for a key: FNV-1a 64 and an
// odd-forced mix of it (odd step ⇒ full period modulo any power of two, and
// harmless for other widths).
func bloomHashes(key string) (h1, h2 uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 = h.Sum64()
	h2 = (h1*0x9E3779B97F4A7C15 ^ h1>>29) | 1
	return
}

// BloomDigest is a parsed outcome digest, ready for membership probes.
type BloomDigest struct {
	probes uint64
	mbits  uint64
	bits   []byte
}

// ParseBloomDigest parses the digest wire form. An empty string parses to
// nil (claims nothing) without error.
func ParseBloomDigest(s string) (*BloomDigest, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.SplitN(s, ":", 4)
	if len(parts) != 4 || parts[0] != "b1" {
		return nil, fmt.Errorf("store: bad digest format")
	}
	k, err := strconv.ParseUint(parts[1], 10, 8)
	if err != nil || k == 0 {
		return nil, fmt.Errorf("store: bad digest probe count")
	}
	mbits, err := strconv.ParseUint(parts[2], 10, 32)
	if err != nil || mbits == 0 || mbits%8 != 0 {
		return nil, fmt.Errorf("store: bad digest width")
	}
	bits, err := base64.RawURLEncoding.DecodeString(parts[3])
	if err != nil || uint64(len(bits)) != mbits/8 {
		return nil, fmt.Errorf("store: bad digest bits")
	}
	return &BloomDigest{probes: k, mbits: mbits, bits: bits}, nil
}

// Contains reports whether the digest claims the key. A nil digest claims
// nothing.
func (d *BloomDigest) Contains(key string) bool {
	if d == nil {
		return false
	}
	h1, h2 := bloomHashes(key)
	for i := uint64(0); i < d.probes; i++ {
		bit := (h1 + i*h2) % d.mbits
		if d.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}
