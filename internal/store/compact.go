package store

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Compaction stages, in on-disk order. The compactHook test seam aborts at a
// stage boundary to reproduce the exact state a crash there would leave.
const (
	stageFlushed    = "flushed"     // queue drained onto the old generation
	stageTmpWritten = "tmp-written" // next generation fully written and fsynced
	stageRenamed    = "renamed"     // rename done, file handle not yet swapped
)

// errCompactClosed reports a compaction abandoned because the store closed.
var errCompactClosed = fmt.Errorf("store: compact: store closed")

// Compact rewrites the live, deduplicated record set to a fresh generation:
// knowledge.log.tmp is written with a fresh {version, params} header, fsynced,
// and atomically renamed over knowledge.log (after re-checking that the old
// generation's header still matches this store's version and params). It runs
// concurrently with serving — appends land in the write-behind queue during
// the rewrite and are flushed onto the new generation afterwards — and a
// crash at any point leaves either generation loadable. It returns the log
// bytes reclaimed.
func (s *Store) Compact() (reclaimed int64, err error) {
	if s == nil {
		return 0, nil
	}
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if s.closed.Load() {
		return 0, errCompactClosed
	}
	defer func() {
		if err != nil && err != errCompactClosed {
			s.smu.Lock()
			s.st.CompactErrors++
			s.smu.Unlock()
			s.logf("store: compact: %v", err)
		}
	}()

	// Drain the queue onto the old generation first, so a crash between
	// here and the rename loses nothing that was queued before the
	// compaction started. The snapshot below covers the queued records
	// either way (they are already in the in-memory maps), so a flush
	// error only degrades crash durability, not the new generation.
	// (s.flush directly, not Flush(): Close holds closeMu while waiting on
	// cmu, and the file handle is guaranteed open until that wait returns.)
	if ferr := s.flush(true); ferr != nil {
		s.logf("store: compact: pre-flush: %v (continuing; snapshot covers queued records)", ferr)
	}
	if s.hookAbort(stageFlushed) {
		return 0, nil
	}

	// Snapshot the live record set. A transient key set dedups the
	// snapshot itself: the in-memory lemma/core slices may hold duplicates
	// re-learned across lifetimes (append-time dedup is per-lifetime), and
	// the new generation is where they collapse.
	buf := s.encodeLiveSet()

	// Re-check the old generation's header before replacing it: if the
	// file on disk is no longer a version/params match for this store
	// (swapped out from under us, damaged), renaming over it could destroy
	// a log some other configuration owns.
	path := filepath.Join(s.dir, logName)
	if herr := checkHeader(path, s.opts.Params); herr != nil {
		return 0, fmt.Errorf("old generation header re-check: %w", herr)
	}

	// Write the next generation and make it durable before the rename.
	tmp := filepath.Join(s.dir, tmpName)
	if werr := writeFileSync(tmp, buf); werr != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("write %s: %w", tmp, werr)
	}
	if s.hookAbort(stageTmpWritten) {
		return 0, nil
	}

	// Swap generations under qmu so no flush lands on the old file between
	// the rename and the handle swap.
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.closed.Load() {
		os.Remove(tmp)
		return 0, errCompactClosed
	}
	oldBytes := s.logBytes
	if rerr := os.Rename(tmp, path); rerr != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("rename: %w", rerr)
	}
	syncDir(s.dir)
	if s.hookAbort(stageRenamed) {
		// A crash here (rename durable, handle swap never happened) is
		// simulated by the caller reopening the directory; this process's
		// handle still points at the unlinked old generation, so keep it.
		return 0, nil
	}
	f, oerr := os.OpenFile(path, os.O_WRONLY, 0o644)
	if oerr != nil {
		// The new generation is in place but we cannot append to it.
		// Future flushes would land on the unlinked old file; treat as
		// fatal for this lifetime's writes and drop the handle swap.
		return 0, fmt.Errorf("reopen new generation: %w", oerr)
	}
	newBytes := int64(len(buf))
	if _, serr := f.Seek(newBytes, 0); serr != nil {
		f.Close()
		return 0, fmt.Errorf("seek new generation: %w", serr)
	}
	s.file.Close()
	s.file = f
	s.logBytes = newBytes
	s.flushRetries = 0
	reclaimed = oldBytes - newBytes
	if reclaimed < 0 {
		reclaimed = 0
	}
	s.smu.Lock()
	s.st.Compactions++
	s.st.ReclaimedBytes += reclaimed
	s.st.LogBytes = newBytes
	// The new generation is exactly the live set; queued records flushed
	// onto it after this are counted by push/flush as usual.
	s.st.LiveBytes = newBytes
	s.smu.Unlock()
	s.logf("store: compacted %s: %d -> %d bytes (%d reclaimed)", path, oldBytes, newBytes, reclaimed)
	return reclaimed, nil
}

// maybeCompact runs a compaction when the log has crossed the configured
// size floor and garbage ratio. Called from the flusher goroutine.
func (s *Store) maybeCompact() {
	if s.opts.DisableAutoCompact {
		return
	}
	s.qmu.Lock()
	logBytes := s.logBytes
	s.qmu.Unlock()
	if logBytes < s.opts.CompactMinBytes {
		return
	}
	s.smu.Lock()
	live := s.st.LiveBytes
	s.smu.Unlock()
	garbage := logBytes - live
	if garbage <= 0 || float64(garbage)/float64(logBytes) < s.opts.CompactGarbageRatio {
		return
	}
	if _, err := s.Compact(); err != nil && err != errCompactClosed {
		s.logf("store: auto-compaction failed: %v", err)
	}
}

// encodeLiveSet renders the header plus every live record as log lines,
// deduplicated, in a deterministic order (lemmas and cores keep insertion
// order within their kind; keyed maps are sorted).
func (s *Store) encodeLiveSet() []byte {
	var buf bytes.Buffer
	hdr, _ := encode(record{T: "hdr", Version: version, Params: s.opts.Params})
	buf.Write(hdr)

	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]struct{}{}

	skels := make([]string, 0, len(s.lemmas))
	for skel := range s.lemmas {
		skels = append(skels, skel)
	}
	sort.Strings(skels)
	for _, skel := range skels {
		for _, lem := range s.lemmas[skel] {
			k := lemmaKey(skel, lem)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			if line, err := encode(record{T: "lem", Skel: skel, Lins: lem.Lins, Vals: lem.Vals}); err == nil {
				buf.Write(line)
			}
		}
	}
	for _, c := range s.cores {
		k := coreKey(c)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if line, err := encode(record{T: "core", Unknown: c.Unknown, Preds: c.Preds}); err == nil {
			buf.Write(line)
		}
	}
	for _, key := range sortedKeys(s.verdicts) {
		v := s.verdicts[key]
		if line, err := encode(record{T: "vrd", Skel: key, V: &v}); err == nil {
			buf.Write(line)
		}
	}
	for _, key := range sortedKeys(s.cons) {
		v := s.cons[key]
		if line, err := encode(record{T: "cons", Skel: key, V: &v}); err == nil {
			buf.Write(line)
		}
	}
	outKeys := make([]string, 0, len(s.outcomes))
	for k := range s.outcomes {
		outKeys = append(outKeys, k)
	}
	sort.Strings(outKeys)
	for _, k := range outKeys {
		pk, method, ok := cutNul(k)
		if !ok {
			continue
		}
		if line, err := encode(record{T: "out", Skel: pk, Method: method, Resp: s.outcomes[k]}); err == nil {
			buf.Write(line)
		}
	}
	return buf.Bytes()
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cutNul(k string) (before, after string, ok bool) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:], true
		}
	}
	return k, "", false
}

// checkHeader decodes the first line of path and verifies it is a version-
// and params-matching store header.
func checkHeader(path, params string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	line, err := r.ReadBytes('\n')
	if err != nil {
		return fmt.Errorf("read header line: %w", err)
	}
	rec, ok := decode(bytes.TrimSuffix(line, []byte("\n")))
	if !ok || rec.T != "hdr" {
		return fmt.Errorf("not a store header")
	}
	if rec.Version != version {
		return fmt.Errorf("version %d (want %d)", rec.Version, version)
	}
	if rec.Params != params {
		return fmt.Errorf("params mismatch")
	}
	return nil
}

// writeFileSync writes buf to path (truncating) and fsyncs it.
func writeFileSync(path string, buf []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Best-effort: not every platform supports fsync on directories.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

func (s *Store) hookAbort(stage string) bool {
	return s.compactHook != nil && s.compactHook(stage)
}
