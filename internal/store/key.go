package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"repro/internal/logic"
)

// FormulaKey returns the portable identity of a formula: the hex-encoded
// first 16 bytes of a SHA-256 over an injective byte serialization of the
// syntax tree. Unlike *logic.IFormula pointers (process-local) or the 64-bit
// structural hash (collisions would flip persisted verdicts), this key is
// stable across processes and collision-proof for any realistic store size,
// so it can name skeletons, predicates, and validity verdicts on disk.
//
// The encoding mirrors logic's structural hash walk: a distinct tag byte per
// node kind, length-prefixed strings, and child counts for variadic nodes,
// which makes it injective on the grammar without serializing the formula to
// text first.
func FormulaKey(f logic.Formula) string {
	h := sha256.New()
	w := keyWriter{h: h}
	w.formula(f)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// Key tags, mirroring logic's hash tags one to one.
const (
	keyVar byte = iota + 1
	keyIntLit
	keyAdd
	keySub
	keyMul
	keySelect
	keyApply
	keyArrVar
	keyStore
	keyAtom
	keyBool
	keyNot
	keyAnd
	keyOr
	keyImplies
	keyForall
	keyExists
	keyUnknown
	keyAEq
)

type keyWriter struct {
	h   hash.Hash
	buf [9]byte
}

func (w keyWriter) tag(b byte) {
	w.buf[0] = b
	w.h.Write(w.buf[:1])
}

func (w keyWriter) num(v int64) {
	binary.BigEndian.PutUint64(w.buf[:8], uint64(v))
	w.h.Write(w.buf[:8])
}

func (w keyWriter) str(s string) {
	w.num(int64(len(s)))
	w.h.Write([]byte(s))
}

func (w keyWriter) term(t logic.Term) {
	switch t := t.(type) {
	case logic.Var:
		w.tag(keyVar)
		w.str(t.Name)
	case logic.IntLit:
		w.tag(keyIntLit)
		w.num(t.Val)
	case logic.Add:
		w.tag(keyAdd)
		w.term(t.X)
		w.term(t.Y)
	case logic.Sub:
		w.tag(keySub)
		w.term(t.X)
		w.term(t.Y)
	case logic.Mul:
		w.tag(keyMul)
		w.num(int64(t.C))
		w.term(t.X)
	case logic.Select:
		w.tag(keySelect)
		w.arr(t.A)
		w.term(t.Idx)
	case logic.Apply:
		w.tag(keyApply)
		w.str(t.F)
		w.num(int64(len(t.Args)))
		for _, a := range t.Args {
			w.term(a)
		}
	default:
		panic("store: unknown term in FormulaKey")
	}
}

func (w keyWriter) arr(a logic.Arr) {
	switch a := a.(type) {
	case logic.ArrVar:
		w.tag(keyArrVar)
		w.str(a.Name)
	case logic.Store:
		w.tag(keyStore)
		w.arr(a.A)
		w.term(a.Idx)
		w.term(a.Val)
	default:
		panic("store: unknown array term in FormulaKey")
	}
}

func (w keyWriter) formula(f logic.Formula) {
	switch f := f.(type) {
	case logic.Atom:
		w.tag(keyAtom)
		w.num(int64(f.Op))
		w.term(f.X)
		w.term(f.Y)
	case logic.Bool:
		w.tag(keyBool)
		if f.Val {
			w.num(1)
		} else {
			w.num(0)
		}
	case logic.Not:
		w.tag(keyNot)
		w.formula(f.F)
	case logic.And:
		w.tag(keyAnd)
		w.num(int64(len(f.Fs)))
		for _, g := range f.Fs {
			w.formula(g)
		}
	case logic.Or:
		w.tag(keyOr)
		w.num(int64(len(f.Fs)))
		for _, g := range f.Fs {
			w.formula(g)
		}
	case logic.Implies:
		w.tag(keyImplies)
		w.formula(f.A)
		w.formula(f.B)
	case logic.Forall:
		w.tag(keyForall)
		w.num(int64(len(f.Vars)))
		for _, v := range f.Vars {
			w.str(v)
		}
		w.formula(f.Body)
	case logic.Exists:
		w.tag(keyExists)
		w.num(int64(len(f.Vars)))
		for _, v := range f.Vars {
			w.str(v)
		}
		w.formula(f.Body)
	case logic.Unknown:
		w.tag(keyUnknown)
		w.str(f.Name)
	case logic.AEq:
		w.tag(keyAEq)
		w.arr(f.L)
		w.arr(f.R)
	default:
		panic("store: unknown formula in FormulaKey")
	}
}
