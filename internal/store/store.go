// Package store is the on-disk knowledge base that lets the engine warm-start
// across process lifetimes. It persists the grounder-independent learned
// state — theory-lemma vectors (lia.Lin), unsat-core predicate sets, SMT
// validity/consistency verdicts, and whole solved-problem outcomes — in a
// single versioned, checksummed append-only log.
//
// Everything persisted here is safe to replay into a fresh engine:
//
//   - Theory lemmas are valid LIA facts independent of any grounder, so
//     importing them can never flip a verdict (they are re-interned and
//     re-asserted by the receiving context, exactly like PR-4 cross-lane
//     exchange).
//   - Verdicts and outcomes are deterministic given identical solver bounds,
//     so the header carries a params fingerprint and the whole store falls
//     back to cold start when the bounds change.
//   - Conservative answers produced under a fired Stop hook are never
//     appended by callers (mirroring the in-memory cache's forget-on-stop
//     rule), so replay cannot resurrect a deadline artifact as truth.
//
// Durability model: appends are write-behind through a bounded queue drained
// by a dedicated flusher goroutine (coalesced writes, optional fsync per
// flush). Flush() and Close() always fsync, so a graceful drain loses
// nothing; a crash loses at most the last flush interval. Corruption is
// contained by a per-record CRC32: a torn or bit-flipped tail is truncated
// away on the next open, and an unreadable header sidelines the whole file
// and starts cold — never a crash, never a wrong verdict.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lia"
)

const (
	// version is bumped whenever the record encoding changes incompatibly;
	// a mismatch sidelines the file and starts cold.
	version = 1

	logName = "knowledge.log"

	// tmpName is the next-generation rewrite target of the compactor. It is
	// atomically renamed over logName on success and removed on open: a
	// crash at any point of a compaction leaves either the old generation
	// (tmp incomplete or complete-but-unrenamed) or the new one (rename
	// done), both loadable.
	tmpName = logName + ".tmp"

	// maxLineBytes bounds a single record line; anything longer is treated
	// as corruption (and callers never produce records near this size).
	maxLineBytes = 1 << 20

	// maxQueuedRecords bounds the write-behind queue. When the flusher
	// cannot keep up, further appends are dropped (and counted) rather
	// than blocking the solver hot path.
	maxQueuedRecords = 1 << 15

	// maxLemmasPerSkel bounds how many lemma records a single skeleton
	// accumulates across lifetimes, mirroring ctxMaxExchanged in smt.
	maxLemmasPerSkel = 4096

	// maxCores bounds the portable core list.
	maxCores = 4096

	// maxFlushRetries bounds how many consecutive flushes may fail before
	// the batch is dropped (and counted): a transient write error (brief
	// ENOSPC, ...) is retried, a persistent one must not pin the queue
	// forever.
	maxFlushRetries = 8

	defaultFlushInterval = 250 * time.Millisecond

	// defaultDropWarnInterval rate-limits the queue-full warning: the first
	// drop logs immediately, later drops log at most once per interval.
	defaultDropWarnInterval = 30 * time.Second

	// Auto-compaction defaults: the flusher triggers a compaction once the
	// log exceeds CompactMinBytes and at least CompactGarbageRatio of it is
	// not live (duplicate or superseded records from earlier generations).
	defaultCompactMinBytes     = 1 << 20
	defaultCompactGarbageRatio = 0.5
)

// Options configures Open.
type Options struct {
	// Params is a fingerprint of every solver/engine option that could
	// change a verdict (instantiation rounds, Ackermann budgets, theory
	// iteration caps, ...). A store written under a different fingerprint
	// is sidelined and the engine starts cold: persisted verdicts are only
	// as deterministic as the bounds they were computed under.
	Params string

	// Fsync makes every periodic flush fsync. Flush() and Close() always
	// fsync regardless.
	Fsync bool

	// FlushInterval is the write-behind coalescing window (default 250ms).
	FlushInterval time.Duration

	// Logf, when non-nil, receives warnings (corruption fallback, dropped
	// records). It is never called on the solver hot path.
	Logf func(format string, args ...any)

	// DropWarnInterval rate-limits the queue-full data-loss warning
	// (default 30s): the first drop logs immediately, later drops at most
	// once per interval.
	DropWarnInterval time.Duration

	// CompactMinBytes and CompactGarbageRatio tune the flusher's
	// auto-compaction trigger: compact once the log exceeds CompactMinBytes
	// (default 1 MiB) and at least CompactGarbageRatio (default 0.5) of it
	// is garbage. DisableAutoCompact turns the trigger off; Compact() stays
	// available.
	CompactMinBytes     int64
	CompactGarbageRatio float64
	DisableAutoCompact  bool
}

// Lemma is one grounder-independent theory lemma: the clause
// ⋁ᵢ (Lins[i] ≤ 0) = Vals[i], exactly the payload of cross-lane exchange.
type Lemma struct {
	Lins []lia.Lin `json:"lins"`
	Vals []bool    `json:"vals"`
}

// Core is a portable unsat-core item: the named unknown cannot hold all of
// Preds (predicate FormulaKeys) simultaneously.
type Core struct {
	Unknown string   `json:"unknown"`
	Preds   []string `json:"preds"`
}

// Stats is a point-in-time snapshot of store health.
type Stats struct {
	ColdStart   bool  // true when no usable prior state was loaded
	LoadMillis  int64 // wall time spent replaying the log at Open
	LoadedBytes int64 // bytes of usable log replayed

	LoadedLemmas      int64
	LoadedCores       int64
	LoadedVerdicts    int64
	LoadedConsistency int64
	LoadedOutcomes    int64

	Appended     int64 // records accepted into the queue this lifetime
	Deduped      int64 // appends skipped because an identical record exists
	Dropped      int64 // appends lost to a full queue or a failed flush
	QueueDepth   int64 // records currently awaiting flush
	Flushes      int64
	FlushErrors  int64
	FlushRetries int64 // failed flushes whose batch was requeued

	Compactions    int64 // completed log compactions this lifetime
	CompactErrors  int64 // compactions aborted by an error
	ReclaimedBytes int64 // log bytes reclaimed by compaction
	LogBytes       int64 // current on-disk log size
	LiveBytes      int64 // estimated bytes of the live, deduplicated record set
}

// record is the one-envelope wire form of every log line.
type record struct {
	T string `json:"t"` // "hdr" | "lem" | "core" | "vrd" | "cons" | "out"

	// hdr
	Version int    `json:"version,omitempty"`
	Params  string `json:"params,omitempty"`

	// lem: Skel = skeleton FormulaKey. vrd/cons: Skel = formula FormulaKey.
	// out: Skel = problem key (X-VS3-Problem-Key SHA-256), Method set.
	Skel   string `json:"skel,omitempty"`
	Method string `json:"method,omitempty"`

	Lins []lia.Lin `json:"lins,omitempty"`
	Vals []bool    `json:"vals,omitempty"`

	V *bool `json:"v,omitempty"`

	Unknown string   `json:"unknown,omitempty"`
	Preds   []string `json:"preds,omitempty"`

	Resp json.RawMessage `json:"resp,omitempty"`
}

// Store is the on-disk knowledge base. All methods are safe for concurrent
// use; lookups are read-locked map hits, appends are queue pushes.
type Store struct {
	dir  string
	opts Options

	mu       sync.RWMutex
	lemmas   map[string][]Lemma // skeleton key -> lemmas
	verdicts map[string]bool    // formula key -> valid?
	cons     map[string]bool    // formula key -> consistent?
	outcomes map[string][]byte  // problemKey \x00 method -> response JSON
	cores    []Core

	// seen dedups lemma/core appends within this lifetime only. It is NOT
	// rebuilt from the log at Open (that would pin an exact key string per
	// record ever written — RAM proportional to log history), so a hot
	// skeleton's lemma vectors re-learned in a later lifetime re-append;
	// compaction is the cross-lifetime deduplicator. Verdict, consistency,
	// and outcome appends dedup exactly (and for free) against their loaded
	// maps.
	seen map[string]struct{}

	qmu          sync.Mutex
	queue        [][]byte // encoded lines awaiting flush
	file         *os.File
	logBytes     int64                     // on-disk size of the well-formed log prefix
	flushRetries int                       // consecutive failed flushes of the current batch
	writeHook    func([]byte) (int, error) // test seam; nil means file.Write

	// cmu serializes compactions (manual Compact vs the flusher trigger).
	cmu sync.Mutex
	// compactHook, when non-nil, is called at each compaction stage; a true
	// return aborts in place, leaving exactly the on-disk state a crash at
	// that point would (test seam for crash-recovery coverage).
	compactHook func(stage string) bool

	dropMu        sync.Mutex
	lastDropWarn  time.Time
	droppedAtWarn int64

	digest digestCache

	stop    chan struct{}
	done    chan struct{}
	closed  atomic.Bool
	closeMu sync.Mutex

	smu sync.Mutex
	st  Stats
}

// Open loads (or creates) the knowledge store in dir. It never fails on a
// damaged prior store: corruption falls back to cold start with a logged
// warning. It fails only on real I/O errors (unwritable directory).
func (o *Options) normalize() {
	if o.FlushInterval <= 0 {
		o.FlushInterval = defaultFlushInterval
	}
	if o.DropWarnInterval <= 0 {
		o.DropWarnInterval = defaultDropWarnInterval
	}
	if o.CompactMinBytes <= 0 {
		o.CompactMinBytes = defaultCompactMinBytes
	}
	if o.CompactGarbageRatio <= 0 || o.CompactGarbageRatio > 1 {
		o.CompactGarbageRatio = defaultCompactGarbageRatio
	}
}

func Open(dir string, opts Options) (*Store, error) {
	opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		lemmas:   map[string][]Lemma{},
		verdicts: map[string]bool{},
		cons:     map[string]bool{},
		outcomes: map[string][]byte{},
		seen:     map[string]struct{}{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	// A stale next-generation file is a compaction that never completed its
	// rename: the current log is intact and authoritative, so the tmp is
	// discarded (whether torn mid-write or complete-but-unrenamed).
	tmp := filepath.Join(dir, tmpName)
	if err := os.Remove(tmp); err == nil {
		s.logf("store: removed stale compaction file %s (interrupted compaction; current log is authoritative)", tmp)
	}

	start := time.Now()
	goodBytes, freshHeader := s.load()
	s.st.LoadMillis = time.Since(start).Milliseconds()
	s.st.LoadedBytes = goodBytes

	path := filepath.Join(dir, logName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// Truncate away any corrupt tail so future appends extend a log whose
	// every prefix is well-formed, then position at the end.
	if err := f.Truncate(goodBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Seek(goodBytes, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s.file = f
	s.logBytes = goodBytes
	if freshHeader {
		hdr := record{T: "hdr", Version: version, Params: opts.Params}
		line, _ := encode(hdr)
		if _, err := f.Write(line); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		s.logBytes += int64(len(line))
		s.st.LiveBytes += int64(len(line))
	}
	s.st.LogBytes = s.logBytes
	s.digest.bump()
	go s.flusher()
	return s, nil
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// load replays the log into memory. It returns the byte offset of the last
// well-formed record (the file is truncated there before appending) and
// whether a fresh header must be written (empty or sidelined file).
func (s *Store) load() (goodBytes int64, freshHeader bool) {
	path := filepath.Join(s.dir, logName)
	data, err := os.ReadFile(path)
	if err != nil || len(data) == 0 {
		s.st.ColdStart = true
		return 0, true
	}

	sideline := func(reason string) (int64, bool) {
		aside := path + ".corrupt"
		if err := os.Rename(path, aside); err == nil {
			s.logf("store: %s; sidelined %s to %s, starting cold", reason, path, aside)
		} else {
			os.Remove(path)
			s.logf("store: %s; removed %s, starting cold", reason, path)
		}
		// Drop anything replayed before the problem was detected: a store
		// whose header we cannot trust contributes nothing.
		s.lemmas = map[string][]Lemma{}
		s.verdicts = map[string]bool{}
		s.cons = map[string]bool{}
		s.outcomes = map[string][]byte{}
		s.cores = nil
		s.seen = map[string]struct{}{}
		s.st = Stats{ColdStart: true}
		return 0, true
	}

	// loadSeen dedups replay only: it is discarded when load returns, so
	// the resident store never pins a key string per historical record.
	// Duplicate records on disk (re-learned lemmas from later lifetimes,
	// pre-compaction generations) collapse here and are counted as garbage
	// via the LiveBytes/LogBytes gap that drives auto-compaction.
	loadSeen := map[string]struct{}{}

	var off int64
	first := true
	for off < int64(len(data)) {
		rest := data[off:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 || nl > maxLineBytes {
			// Torn tail (crash mid-append) or absurd line: stop here and
			// truncate the tail away. Everything before it is good.
			if first {
				return sideline("unreadable header line")
			}
			s.logf("store: truncating %d corrupt trailing bytes of %s", int64(len(data))-off, path)
			break
		}
		line := rest[:nl]
		rec, ok := decode(line)
		if !ok {
			if first {
				return sideline("corrupt header record")
			}
			s.logf("store: truncating corrupt record at offset %d of %s", off, path)
			break
		}
		if first {
			if rec.T != "hdr" {
				return sideline("missing header record")
			}
			if rec.Version != version {
				return sideline(fmt.Sprintf("version %d (want %d)", rec.Version, version))
			}
			if rec.Params != s.opts.Params {
				return sideline("solver params changed since the store was written")
			}
			first = false
			s.st.LiveBytes += int64(nl) + 1
			off += int64(nl) + 1
			continue
		}
		if s.replay(rec, loadSeen) {
			s.st.LiveBytes += int64(nl) + 1
		}
		off += int64(nl) + 1
	}
	if first {
		// File existed but held no complete header line.
		return sideline("truncated header")
	}
	return off, false
}

// replay folds one decoded record into the in-memory maps, deduping against
// loadSeen (first record wins). It reports whether the record was accepted —
// a rejected record is on-disk garbage the compactor can reclaim.
func (s *Store) replay(rec record, loadSeen map[string]struct{}) bool {
	switch rec.T {
	case "lem":
		if rec.Skel == "" || len(rec.Lins) == 0 || len(rec.Lins) != len(rec.Vals) {
			return false
		}
		for i := range rec.Lins {
			if rec.Lins[i].Coef == nil {
				rec.Lins[i].Coef = map[string]int64{}
			}
		}
		lem := Lemma{Lins: rec.Lins, Vals: rec.Vals}
		k := lemmaKey(rec.Skel, lem)
		if _, dup := loadSeen[k]; dup || len(s.lemmas[rec.Skel]) >= maxLemmasPerSkel {
			return false
		}
		loadSeen[k] = struct{}{}
		s.lemmas[rec.Skel] = append(s.lemmas[rec.Skel], lem)
		s.st.LoadedLemmas++
	case "core":
		if rec.Unknown == "" || len(rec.Preds) == 0 {
			return false
		}
		c := Core{Unknown: rec.Unknown, Preds: rec.Preds}
		k := coreKey(c)
		if _, dup := loadSeen[k]; dup || len(s.cores) >= maxCores {
			return false
		}
		loadSeen[k] = struct{}{}
		s.cores = append(s.cores, c)
		s.st.LoadedCores++
	case "vrd":
		if rec.Skel == "" || rec.V == nil {
			return false
		}
		if _, dup := s.verdicts[rec.Skel]; dup {
			return false
		}
		s.verdicts[rec.Skel] = *rec.V
		s.st.LoadedVerdicts++
	case "cons":
		if rec.Skel == "" || rec.V == nil {
			return false
		}
		if _, dup := s.cons[rec.Skel]; dup {
			return false
		}
		s.cons[rec.Skel] = *rec.V
		s.st.LoadedConsistency++
	case "out":
		if rec.Skel == "" || rec.Method == "" || len(rec.Resp) == 0 {
			return false
		}
		ok := rec.Skel + "\x00" + rec.Method
		if _, dup := s.outcomes[ok]; dup {
			return false
		}
		s.outcomes[ok] = append([]byte(nil), rec.Resp...)
		s.st.LoadedOutcomes++
	default:
		// Unknown record type from a future minor revision: skip, do not
		// treat as corruption (and do not count it live — a compaction
		// under this binary would not preserve it).
		return false
	}
	return true
}

// --- encoding ---

// encode renders a record as "%08x <json>\n" where the hex prefix is the
// IEEE CRC32 of the JSON payload.
func encode(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	line := make([]byte, 0, len(payload)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(payload))
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// decode parses one line (without trailing newline), verifying the CRC.
func decode(line []byte) (record, bool) {
	var rec record
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return rec, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != want {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

func lemmaKey(skel string, lem Lemma) string {
	var b strings.Builder
	b.WriteString("l|")
	b.WriteString(skel)
	for i, l := range lem.Lins {
		b.WriteByte('|')
		b.WriteString(l.Key())
		if lem.Vals[i] {
			b.WriteByte('+')
		} else {
			b.WriteByte('-')
		}
	}
	return b.String()
}

func coreKey(c Core) string {
	preds := append([]string(nil), c.Preds...)
	sort.Strings(preds)
	return "k|" + c.Unknown + "|" + strings.Join(preds, "|")
}

// --- lookups ---

// Lemmas returns the persisted theory lemmas for a skeleton (shared slice;
// callers must not mutate).
func (s *Store) Lemmas(skel string) []Lemma {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lemmas[skel]
}

// NumLemmas reports how many lemma records are held across all skeletons.
func (s *Store) NumLemmas() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, ls := range s.lemmas {
		n += len(ls)
	}
	return n
}

// Verdict returns the persisted validity verdict for a formula key.
func (s *Store) Verdict(key string) (valid, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	valid, ok = s.verdicts[key]
	return
}

// Consistency returns the persisted consistency verdict for a formula key.
func (s *Store) Consistency(key string) (sat, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sat, ok = s.cons[key]
	return
}

// Outcome returns the persisted response body for a (problem key, method).
func (s *Store) Outcome(problemKey, method string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.outcomes[problemKey+"\x00"+method]
	return b, ok
}

// Cores returns all persisted portable core items (shared slice; callers
// must not mutate).
func (s *Store) Cores() []Core {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cores
}

// --- appends (write-behind) ---

// AppendLemma persists a theory lemma under a skeleton key. The Lin vectors
// are deep-copied at enqueue time, so the caller may keep mutating its own.
func (s *Store) AppendLemma(skel string, lem Lemma) {
	if s == nil || skel == "" || len(lem.Lins) == 0 || len(lem.Lins) != len(lem.Vals) {
		return
	}
	cp := Lemma{Lins: make([]lia.Lin, len(lem.Lins)), Vals: append([]bool(nil), lem.Vals...)}
	for i, l := range lem.Lins {
		cp.Lins[i] = l.Clone()
	}
	k := lemmaKey(skel, cp)
	s.mu.Lock()
	if _, dup := s.seen[k]; dup || len(s.lemmas[skel]) >= maxLemmasPerSkel {
		s.mu.Unlock()
		s.noteDedup()
		return
	}
	s.seen[k] = struct{}{}
	s.lemmas[skel] = append(s.lemmas[skel], cp)
	s.mu.Unlock()
	s.push(record{T: "lem", Skel: skel, Lins: cp.Lins, Vals: cp.Vals})
}

// AppendVerdict persists a validity verdict for a formula key. Callers must
// not append verdicts computed under a fired Stop hook.
func (s *Store) AppendVerdict(key string, valid bool) {
	if s == nil || key == "" {
		return
	}
	s.mu.Lock()
	if _, dup := s.verdicts[key]; dup {
		s.mu.Unlock()
		s.noteDedup()
		return
	}
	s.verdicts[key] = valid
	s.mu.Unlock()
	v := valid
	s.push(record{T: "vrd", Skel: key, V: &v})
}

// AppendConsistency persists a consistency (satisfiability) verdict for a
// formula key, under the same no-Stop rule as AppendVerdict.
func (s *Store) AppendConsistency(key string, sat bool) {
	if s == nil || key == "" {
		return
	}
	s.mu.Lock()
	if _, dup := s.cons[key]; dup {
		s.mu.Unlock()
		s.noteDedup()
		return
	}
	s.cons[key] = sat
	s.mu.Unlock()
	v := sat
	s.push(record{T: "cons", Skel: key, V: &v})
}

// AppendOutcome persists a whole solved-problem response body keyed by the
// problem key and method. Callers must only pass completed (non-aborted)
// outcomes.
func (s *Store) AppendOutcome(problemKey, method string, resp []byte) {
	if s == nil || problemKey == "" || method == "" || len(resp) == 0 {
		return
	}
	k := problemKey + "\x00" + method
	cp := append([]byte(nil), resp...)
	s.mu.Lock()
	if _, dup := s.outcomes[k]; dup {
		s.mu.Unlock()
		s.noteDedup()
		return
	}
	s.outcomes[k] = cp
	s.mu.Unlock()
	s.digest.bump()
	s.push(record{T: "out", Skel: problemKey, Method: method, Resp: cp})
}

// AppendCore persists a portable unsat-core item.
func (s *Store) AppendCore(c Core) {
	if s == nil || c.Unknown == "" || len(c.Preds) == 0 {
		return
	}
	c.Preds = append([]string(nil), c.Preds...)
	k := coreKey(c)
	s.mu.Lock()
	if _, dup := s.seen[k]; dup || len(s.cores) >= maxCores {
		s.mu.Unlock()
		s.noteDedup()
		return
	}
	s.seen[k] = struct{}{}
	s.cores = append(s.cores, c)
	s.mu.Unlock()
	s.push(record{T: "core", Unknown: c.Unknown, Preds: c.Preds})
}

func (s *Store) noteDedup() {
	s.smu.Lock()
	s.st.Deduped++
	s.smu.Unlock()
}

// push marshals a record and enqueues it for the flusher. Marshaling happens
// here (not in the flusher) so the record is immutable from enqueue on.
func (s *Store) push(rec record) {
	line, err := encode(rec)
	if err != nil {
		s.logf("store: dropping unencodable record: %v", err)
		return
	}
	s.qmu.Lock()
	if len(s.queue) >= maxQueuedRecords {
		s.qmu.Unlock()
		s.smu.Lock()
		s.st.Dropped++
		total := s.st.Dropped
		s.smu.Unlock()
		s.warnDrop(total)
		return
	}
	s.queue = append(s.queue, line)
	s.qmu.Unlock()
	s.smu.Lock()
	s.st.Appended++
	s.st.LiveBytes += int64(len(line))
	s.smu.Unlock()
}

// warnDrop surfaces queue-full data loss at the log level, rate-limited: the
// first drop logs immediately, later drops at most once per DropWarnInterval
// (the intermediate count is carried into the next warning, so no loss goes
// unreported).
func (s *Store) warnDrop(total int64) {
	s.dropMu.Lock()
	now := time.Now()
	if !s.lastDropWarn.IsZero() && now.Sub(s.lastDropWarn) < s.opts.DropWarnInterval {
		s.dropMu.Unlock()
		return
	}
	since := total - s.droppedAtWarn
	s.lastDropWarn = now
	s.droppedAtWarn = total
	s.dropMu.Unlock()
	s.logf("store: write-behind queue full; dropped %d records since last warning (%d total this lifetime)", since, total)
}

// flusher drains the queue every FlushInterval until Close, and triggers a
// compaction when the log crosses the size/garbage-ratio threshold.
func (s *Store) flusher() {
	defer close(s.done)
	t := time.NewTicker(s.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.flush(s.opts.Fsync)
			s.maybeCompact()
		case <-s.stop:
			return
		}
	}
}

// flush writes every queued line; sync forces an fsync afterwards. The queue
// is cleared only after the write succeeds: on error the batch stays queued
// for the next attempt (a transient ENOSPC must not lose records), bounded
// by maxFlushRetries, after which the batch is dropped and counted.
func (s *Store) flush(sync bool) error {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	var firstErr error
	if len(s.queue) > 0 {
		buf := make([]byte, 0, 4096)
		for _, line := range s.queue {
			buf = append(buf, line...)
		}
		n, err := s.write(buf)
		s.smu.Lock()
		s.st.Flushes++
		if err != nil {
			s.st.FlushErrors++
		}
		s.smu.Unlock()
		if err != nil {
			firstErr = err
			// A partial write leaves a torn line at the tail; retrying the
			// whole batch after it would wedge replay at the tear (CRC
			// mismatch truncates there). Roll the file back to the last
			// well-formed prefix so the retry extends a clean log.
			requeue := true
			if n > 0 {
				if terr := s.file.Truncate(s.logBytes); terr != nil {
					// Cannot remove the torn tail: dropping the batch keeps
					// the tear as the final bytes, which the next open
					// truncates away — degraded, never corrupting.
					requeue = false
					s.logf("store: flush: rollback of torn tail failed (%v); dropping %d queued records", terr, len(s.queue))
				} else if _, serr := s.file.Seek(s.logBytes, 0); serr != nil {
					requeue = false
					s.logf("store: flush: reposition after rollback failed (%v); dropping %d queued records", serr, len(s.queue))
				}
			}
			if requeue {
				s.flushRetries++
				s.smu.Lock()
				s.st.FlushRetries++
				s.smu.Unlock()
				if s.flushRetries <= maxFlushRetries {
					s.logf("store: flush: %v; %d records requeued (attempt %d/%d)",
						err, len(s.queue), s.flushRetries, maxFlushRetries)
					return firstErr
				}
				s.logf("store: flush failed %d consecutive times (%v); dropping %d queued records",
					s.flushRetries, err, len(s.queue))
			}
			dropped := int64(len(s.queue))
			s.queue = s.queue[:0]
			s.flushRetries = 0
			s.smu.Lock()
			s.st.Dropped += dropped
			total := s.st.Dropped
			s.smu.Unlock()
			s.warnDrop(total)
			return firstErr
		}
		s.queue = s.queue[:0]
		s.flushRetries = 0
		s.logBytes += int64(n)
		s.smu.Lock()
		s.st.LogBytes = s.logBytes
		s.smu.Unlock()
	}
	if sync && firstErr == nil {
		if err := s.file.Sync(); err != nil {
			firstErr = err
			s.smu.Lock()
			s.st.FlushErrors++
			s.smu.Unlock()
		}
	}
	if firstErr != nil {
		s.logf("store: flush: %v", firstErr)
	}
	return firstErr
}

// write is the flusher's file append, routed through the test seam when one
// is installed. Called with qmu held.
func (s *Store) write(buf []byte) (int, error) {
	if s.writeHook != nil {
		return s.writeHook(buf)
	}
	return s.file.Write(buf)
}

// Flush synchronously drains the write-behind queue and fsyncs. Safe to call
// at any time, including after Close (then a no-op).
func (s *Store) Flush() error {
	if s == nil {
		return nil
	}
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed.Load() {
		return nil
	}
	return s.flush(true)
}

// Close stops the flusher, drains and fsyncs the queue, and closes the file.
// Idempotent.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.closeMu.Lock()
	defer s.closeMu.Unlock()
	if s.closed.Load() {
		return nil
	}
	s.closed.Store(true)
	close(s.stop)
	<-s.done
	// Wait out any manual Compact in flight: it re-checks closed before the
	// generation swap, so from here the file handle is stable.
	s.cmu.Lock()
	s.cmu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	err := s.flush(true)
	if cerr := s.file.Close(); err == nil {
		err = cerr
	}
	return err
}

// Dir returns the directory the store lives in.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats returns a point-in-time snapshot of store health.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.smu.Lock()
	st := s.st
	s.smu.Unlock()
	s.qmu.Lock()
	st.QueueDepth = int64(len(s.queue))
	st.LogBytes = s.logBytes
	s.qmu.Unlock()
	return st
}
