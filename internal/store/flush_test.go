package store

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// openManual opens a store whose flusher effectively never runs, so tests
// drive flush() by hand.
func openManual(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.Params = "p"
	opts.FlushInterval = time.Hour
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// TestFlushRequeuesOnWriteError is the regression test for the flush data-
// loss bug: the write-behind queue was cleared before the file write was
// checked, so one transient write error (a brief ENOSPC, say) silently lost
// every queued record. The batch must instead stay queued and land on disk
// once the error clears.
func TestFlushRequeuesOnWriteError(t *testing.T) {
	dir := t.TempDir()
	s := openManual(t, dir, Options{Logf: t.Logf})

	s.AppendVerdict("survivor-1", true)
	s.AppendVerdict("survivor-2", false)
	s.AppendOutcome("prob", "optimal", []byte(`{"proved":true}`))

	fail := true
	s.qmu.Lock()
	s.writeHook = func(b []byte) (int, error) {
		if fail {
			return 0, fmt.Errorf("injected: no space left on device")
		}
		return s.file.Write(b)
	}
	s.qmu.Unlock()

	if err := s.flush(false); err == nil {
		t.Fatal("flush with failing writer returned nil")
	}
	st := s.Stats()
	if st.FlushErrors != 1 || st.FlushRetries != 1 {
		t.Fatalf("after failed flush: %+v", st)
	}
	if st.QueueDepth != 3 {
		t.Fatalf("queue depth after failed flush = %d, want 3 (batch requeued)", st.QueueDepth)
	}
	if st.Dropped != 0 {
		t.Fatalf("failed flush dropped %d records", st.Dropped)
	}

	// Error clears; the very next flush must deliver the whole batch.
	fail = false
	if err := s.flush(true); err != nil {
		t.Fatalf("flush after error cleared: %v", err)
	}
	if st := s.Stats(); st.QueueDepth != 0 {
		t.Fatalf("queue depth after recovery = %d", st.QueueDepth)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, "p")
	defer r.Close()
	for _, key := range []string{"survivor-1", "survivor-2"} {
		if _, ok := r.Verdict(key); !ok {
			t.Errorf("verdict %q lost across the transient write error", key)
		}
	}
	if _, ok := r.Outcome("prob", "optimal"); !ok {
		t.Error("outcome lost across the transient write error")
	}
}

// TestFlushRetryBudget pins the bound: a persistently failing writer may not
// pin the batch (and the memory behind it) forever — after maxFlushRetries
// consecutive failures the batch is dropped, counted, and warned about.
func TestFlushRetryBudget(t *testing.T) {
	dir := t.TempDir()
	var logged []string
	var lmu sync.Mutex
	s := openManual(t, dir, Options{Logf: func(format string, args ...any) {
		lmu.Lock()
		logged = append(logged, fmt.Sprintf(format, args...))
		lmu.Unlock()
	}})
	defer s.Close()

	s.AppendVerdict("doomed", true)
	s.qmu.Lock()
	s.writeHook = func([]byte) (int, error) { return 0, fmt.Errorf("injected: persistent failure") }
	s.qmu.Unlock()

	for i := 0; i < maxFlushRetries; i++ {
		if err := s.flush(false); err == nil {
			t.Fatal("failing flush returned nil")
		}
		if st := s.Stats(); st.QueueDepth != 1 || st.Dropped != 0 {
			t.Fatalf("attempt %d: %+v, want batch still queued", i+1, st)
		}
	}
	// One past the budget: the batch is dropped.
	if err := s.flush(false); err == nil {
		t.Fatal("failing flush returned nil")
	}
	st := s.Stats()
	if st.QueueDepth != 0 || st.Dropped != 1 {
		t.Fatalf("after exhausted retry budget: %+v, want batch dropped", st)
	}
	lmu.Lock()
	defer lmu.Unlock()
	found := false
	for _, l := range logged {
		if strings.Contains(l, "dropping") {
			found = true
		}
	}
	if !found {
		t.Errorf("no drop warning logged; got %q", logged)
	}
}

// TestFlushPartialWriteRollsBack covers the torn-tail hazard of requeueing:
// when the write lands partially, the retry must not append the whole batch
// after a half-written line (replay would truncate at the tear and lose the
// rest). The file rolls back to the last well-formed prefix first.
func TestFlushPartialWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	s := openManual(t, dir, Options{Logf: t.Logf})

	s.AppendVerdict("before-partial", true)
	partial := true
	s.qmu.Lock()
	s.writeHook = func(b []byte) (int, error) {
		if partial {
			n := len(b) / 2
			if _, err := s.file.Write(b[:n]); err != nil {
				return 0, err
			}
			return n, fmt.Errorf("injected: partial write")
		}
		return s.file.Write(b)
	}
	s.qmu.Unlock()

	if err := s.flush(false); err == nil {
		t.Fatal("partial flush returned nil")
	}
	partial = false
	if err := s.flush(true); err != nil {
		t.Fatalf("flush after partial: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openT(t, dir, "p")
	defer r.Close()
	if _, ok := r.Verdict("before-partial"); !ok {
		t.Fatal("record lost after partial-write recovery")
	}
	if r.Stats().ColdStart {
		t.Fatal("partial-write recovery corrupted the log")
	}
}

// TestDropWarningRateLimit pins the queue-full warning policy: the first
// drop warns immediately, further drops warn at most once per
// DropWarnInterval, and the next warning carries the count accumulated in
// between.
func TestDropWarningRateLimit(t *testing.T) {
	dir := t.TempDir()
	var warns []string
	var lmu sync.Mutex
	s := openManual(t, dir, Options{
		DropWarnInterval: 80 * time.Millisecond,
		Logf: func(format string, args ...any) {
			msg := fmt.Sprintf(format, args...)
			if strings.Contains(msg, "queue full") {
				lmu.Lock()
				warns = append(warns, msg)
				lmu.Unlock()
			}
		},
	})
	defer s.Close()

	// Fill the queue to the brim so further pushes drop.
	s.qmu.Lock()
	for len(s.queue) < maxQueuedRecords {
		s.queue = append(s.queue, []byte("x\n"))
	}
	s.qmu.Unlock()

	nwarns := func() int {
		lmu.Lock()
		defer lmu.Unlock()
		return len(warns)
	}

	s.AppendVerdict("drop-1", true)
	if n := nwarns(); n != 1 {
		t.Fatalf("first drop: %d warnings, want 1 (immediate)", n)
	}
	s.AppendVerdict("drop-2", true)
	s.AppendVerdict("drop-3", true)
	if n := nwarns(); n != 1 {
		t.Fatalf("drops within the interval: %d warnings, want still 1", n)
	}
	time.Sleep(100 * time.Millisecond)
	s.AppendVerdict("drop-4", true)
	if n := nwarns(); n != 2 {
		t.Fatalf("drop after interval: %d warnings, want 2", n)
	}
	lmu.Lock()
	last := warns[len(warns)-1]
	lmu.Unlock()
	if !strings.Contains(last, "dropped 3 records") || !strings.Contains(last, "4 total") {
		t.Errorf("second warning does not carry accumulated counts: %q", last)
	}
	if st := s.Stats(); st.Dropped != 4 {
		t.Errorf("Dropped = %d, want 4", st.Dropped)
	}

	// Emptying the queue restores appends (sanity that the test setup did
	// not wedge the store).
	s.qmu.Lock()
	s.queue = s.queue[:0]
	s.qmu.Unlock()
	s.AppendVerdict("accepted-again", true)
	if st := s.Stats(); st.Dropped != 4 {
		t.Errorf("append after drain dropped: %+v", st)
	}
}
