package store

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/lia"
	"repro/internal/logic"
)

func openT(t *testing.T, dir string, params string) *Store {
	t.Helper()
	s, err := Open(dir, Options{Params: params, FlushInterval: 5 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func mkLin(k int64, coefs map[string]int64) lia.Lin {
	l := lia.NewLin()
	l.K = k
	for v, c := range coefs {
		l.AddVar(v, c)
	}
	return l
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "p1")

	lem := Lemma{
		Lins: []lia.Lin{mkLin(3, map[string]int64{"x": 1, "y": -2}), mkLin(-1, nil)},
		Vals: []bool{true, false},
	}
	s.AppendLemma("skel-a", lem)
	s.AppendVerdict("f1", true)
	s.AppendVerdict("f2", false)
	s.AppendConsistency("g1", true)
	s.AppendOutcome("prob1", "optimal", []byte(`{"proved":true}`))
	s.AppendCore(Core{Unknown: "I", Preds: []string{"pk1", "pk2"}})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	r := openT(t, dir, "p1")
	defer r.Close()
	st := r.Stats()
	if st.ColdStart {
		t.Fatal("reopen reported cold start")
	}
	if st.LoadedLemmas != 1 || st.LoadedVerdicts != 2 || st.LoadedConsistency != 1 || st.LoadedOutcomes != 1 || st.LoadedCores != 1 {
		t.Fatalf("loaded counts = %+v", st)
	}
	got := r.Lemmas("skel-a")
	if len(got) != 1 {
		t.Fatalf("Lemmas = %d records, want 1", len(got))
	}
	// Key() equality before/after is the round-trip property for Lin.
	for i := range lem.Lins {
		if got[0].Lins[i].Key() != lem.Lins[i].Key() {
			t.Errorf("lin %d: key %q != %q", i, got[0].Lins[i].Key(), lem.Lins[i].Key())
		}
		if got[0].Vals[i] != lem.Vals[i] {
			t.Errorf("lin %d: val %v != %v", i, got[0].Vals[i], lem.Vals[i])
		}
	}
	if v, ok := r.Verdict("f1"); !ok || !v {
		t.Errorf("Verdict(f1) = %v,%v", v, ok)
	}
	if v, ok := r.Verdict("f2"); !ok || v {
		t.Errorf("Verdict(f2) = %v,%v", v, ok)
	}
	if v, ok := r.Consistency("g1"); !ok || !v {
		t.Errorf("Consistency(g1) = %v,%v", v, ok)
	}
	if b, ok := r.Outcome("prob1", "optimal"); !ok || string(b) != `{"proved":true}` {
		t.Errorf("Outcome = %q,%v", b, ok)
	}
	cores := r.Cores()
	if len(cores) != 1 || cores[0].Unknown != "I" || len(cores[0].Preds) != 2 {
		t.Errorf("Cores = %+v", cores)
	}
}

// TestLinCheckerVerdictAfterRoundTrip is the property test the issue asks
// for: a persisted Lin vector must produce the same checker verdict after a
// disk round trip as before.
func TestLinCheckerVerdictAfterRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(8))
	vars := []string{"x", "y", "z"}
	var systems [][]lia.Lin
	s := openT(t, dir, "p")
	for i := 0; i < 40; i++ {
		n := 2 + rng.Intn(4)
		sys := make([]lia.Lin, n)
		vals := make([]bool, n)
		for j := range sys {
			coefs := map[string]int64{}
			for _, v := range vars {
				if rng.Intn(2) == 0 {
					coefs[v] = int64(rng.Intn(7) - 3)
				}
			}
			sys[j] = mkLin(int64(rng.Intn(9)-4), coefs)
			vals[j] = true
		}
		systems = append(systems, sys)
		s.AppendLemma("rt", Lemma{Lins: sys, Vals: vals})
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := openT(t, dir, "p")
	defer r.Close()
	got := r.Lemmas("rt")
	if len(got) != len(systems) {
		t.Fatalf("loaded %d lemma records, want %d", len(got), len(systems))
	}
	for i, lem := range got {
		want := lia.Check(systems[i])
		have := lia.Check(lem.Lins)
		if want.Sat != have.Sat {
			t.Errorf("system %d: checker verdict flipped after round trip: %v -> %v", i, want.Sat, have.Sat)
		}
	}
}

func TestFormulaKeyStableAndDistinct(t *testing.T) {
	x := logic.Var{Name: "x"}
	y := logic.Var{Name: "y"}
	f1 := logic.And{Fs: []logic.Formula{
		logic.Atom{Op: logic.Le, X: x, Y: y},
		logic.Not{F: logic.Atom{Op: logic.Eq, X: x, Y: logic.IntLit{Val: 3}}},
	}}
	f2 := logic.And{Fs: []logic.Formula{
		logic.Atom{Op: logic.Le, X: x, Y: y},
		logic.Not{F: logic.Atom{Op: logic.Eq, X: x, Y: logic.IntLit{Val: 4}}},
	}}
	k1a := FormulaKey(f1)
	k1b := FormulaKey(f1)
	k2 := FormulaKey(f2)
	if k1a != k1b {
		t.Errorf("FormulaKey not deterministic: %q vs %q", k1a, k1b)
	}
	if k1a == k2 {
		t.Errorf("distinct formulas share key %q", k1a)
	}
	if len(k1a) != 32 {
		t.Errorf("key length = %d, want 32 hex chars", len(k1a))
	}
}

// TestCorruptionFallsBackCold is the table-driven satellite: every way of
// mangling the store file must yield a working, cold-or-partially-warm store
// — never an error, never a record that was not written.
func TestCorruptionFallsBackCold(t *testing.T) {
	write := func(t *testing.T, dir string) {
		s := openT(t, dir, "params-v1")
		s.AppendVerdict("f1", true)
		s.AppendVerdict("f2", false)
		s.AppendConsistency("g1", true)
		s.AppendLemma("sk", Lemma{Lins: []lia.Lin{mkLin(1, map[string]int64{"x": 1})}, Vals: []bool{true}})
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}

	cases := []struct {
		name     string
		params   string // params for reopen
		mangle   func(t *testing.T, path string)
		wantCold bool
		// wantPartial: some records may survive (tail damage only).
		wantPartial bool
	}{
		{
			name:   "truncated mid-record",
			params: "params-v1",
			mangle: func(t *testing.T, path string) {
				b := readFileT(t, path)
				os.WriteFile(path, b[:len(b)-7], 0o644)
			},
			wantPartial: true,
		},
		{
			name:   "bit flip in payload",
			params: "params-v1",
			mangle: func(t *testing.T, path string) {
				b := readFileT(t, path)
				// Flip a bit inside the second line's payload.
				i := bytes.IndexByte(b, '\n') + 12
				b[i] ^= 0x20
				os.WriteFile(path, b, 0o644)
			},
			wantPartial: true,
		},
		{
			name:   "bit flip in header",
			params: "params-v1",
			mangle: func(t *testing.T, path string) {
				b := readFileT(t, path)
				b[11] ^= 0x01
				os.WriteFile(path, b, 0o644)
			},
			wantCold: true,
		},
		{
			name:   "version mismatch",
			params: "params-v1",
			mangle: func(t *testing.T, path string) {
				b := readFileT(t, path)
				hdr := b[:bytes.IndexByte(b, '\n')]
				repl := bytes.Replace(hdr, []byte(`"version":1`), []byte(`"version":99`), 1)
				line, _ := reencodeLine(repl)
				os.WriteFile(path, append(line, b[bytes.IndexByte(b, '\n')+1:]...), 0o644)
			},
			wantCold: true,
		},
		{
			name:     "params mismatch",
			params:   "params-v2",
			mangle:   func(t *testing.T, path string) {},
			wantCold: true,
		},
		{
			name:   "garbage file",
			params: "params-v1",
			mangle: func(t *testing.T, path string) {
				os.WriteFile(path, []byte("\x00\x01\x02 not a store at all\xff"), 0o644)
			},
			wantCold: true,
		},
		{
			name:   "empty file",
			params: "params-v1",
			mangle: func(t *testing.T, path string) {
				os.WriteFile(path, nil, 0o644)
			},
			wantCold: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			write(t, dir)
			path := filepath.Join(dir, logName)
			tc.mangle(t, path)

			s, err := Open(dir, Options{Params: tc.params, Logf: t.Logf})
			if err != nil {
				t.Fatalf("Open after mangling: %v", err)
			}
			defer s.Close()
			st := s.Stats()
			if tc.wantCold && !st.ColdStart {
				t.Errorf("expected cold start, got %+v", st)
			}
			if tc.wantCold && (st.LoadedVerdicts != 0 || st.LoadedLemmas != 0) {
				t.Errorf("cold start leaked records: %+v", st)
			}
			if tc.wantPartial && st.ColdStart {
				t.Errorf("tail damage should keep the good prefix, got cold start")
			}
			// Whatever survived must be exactly what was written: any
			// present verdict must carry the original value.
			if v, ok := s.Verdict("f1"); ok && !v {
				t.Error("verdict f1 flipped by corruption")
			}
			if v, ok := s.Verdict("f2"); ok && v {
				t.Error("verdict f2 flipped by corruption")
			}
			// The store must accept new appends and survive a clean
			// reopen with the same params.
			s.AppendVerdict("fresh", true)
			if err := s.Close(); err != nil {
				t.Fatalf("Close after mangling: %v", err)
			}
			r, err := Open(dir, Options{Params: tc.params, Logf: t.Logf})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer r.Close()
			if v, ok := r.Verdict("fresh"); !ok || !v {
				t.Errorf("append after corruption recovery did not survive reopen: %v,%v", v, ok)
			}
		})
	}
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// reencodeLine recomputes the CRC prefix of a mangled line so the mangle
// survives the checksum (testing semantic validation, not just the CRC).
func reencodeLine(line []byte) ([]byte, error) {
	payload := line[9:]
	out := fmt.Appendf(nil, "%08x ", crc32.ChecksumIEEE(payload))
	out = append(out, payload...)
	out = append(out, '\n')
	return out, nil
}

func TestDedupAndQueueBounds(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "p")
	defer s.Close()
	s.AppendVerdict("same", true)
	s.AppendVerdict("same", true)
	s.AppendCore(Core{Unknown: "I", Preds: []string{"b", "a"}})
	s.AppendCore(Core{Unknown: "I", Preds: []string{"a", "b"}}) // same set, different order
	st := s.Stats()
	if st.Deduped != 2 {
		t.Errorf("Deduped = %d, want 2", st.Deduped)
	}
	if st.Appended != 2 {
		t.Errorf("Appended = %d, want 2", st.Appended)
	}
}

func TestFlushDurableWithoutClose(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "p")
	s.AppendVerdict("durable", true)
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Simulate a crash: reopen without Close. The flushed record must be
	// on disk.
	r := openT(t, dir, "p")
	if v, ok := r.Verdict("durable"); !ok || !v {
		t.Errorf("flushed verdict lost without Close: %v,%v", v, ok)
	}
	r.Close()
	s.Close()
}
