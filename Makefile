# Build/test targets. The tier-1 flow is `make check`: build, vet, the
# default test suite, and a short race-detector pass over every package
# (exercising the interner's and the parallel engine's concurrency claims).
# `make test-short` is the <60s developer loop; `make bench` runs the
# engine microbenchmarks; `make bench-json` writes a machine-readable
# BENCH_$(BENCH_N).json report; `make profile` captures CPU/heap profiles
# of the default benchmark suite.

GO ?= go

# Report number for bench-json output (BENCH_2.json, BENCH_3.json, ...).
BENCH_N ?= 4

# Baseline report that bench-compare diffs against.
BENCH_BASE ?= BENCH_3.json

.PHONY: all build vet test test-short test-race test-differential serve-smoke cluster-smoke rpc-smoke restart-smoke compact-smoke bench-cluster bench-lia bench-warm bench-rpc bench-compact bench bench-json bench-compare bench-quick profile check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full default suite (the bench package runs its representative search
# subset; the exhaustive sweep needs VS3_SEARCH=1).
test: build vet
	$(GO) test ./...

# Fast unit tests only: skips the search, cross-check, and table-rendering
# integration tests (see README "Test suites").
test-short: build vet
	$(GO) test -short ./...

# Race-detector pass over every package: the shared SMT solver, the formula
# interner, the parallel fixed-point worklist, the parallel ψ_Prog encoder,
# and the parallel benchmark runner.
test-race:
	$(GO) test -short -race ./...

# Differential tests for the incremental solving pipeline under the race
# detector (reused-vs-fresh SAT probes, context-vs-fresh SMT verdicts,
# fixpoint determinism, ψ_Prog byte-identity), plus the map-solver-vs-legacy-
# BFS solution-set equivalence sweep: every examples/ problem with the
# CrossCheck hook on, randomized small lattices, and the randomized §6
# precondition-enumeration sweep (both enumerators must return equal
# maximally-weak precondition sets modulo logical equivalence). The lia line
# is the Fourier–Motzkin sweep: lia.Check and the persistent LinChecker vs
# brute-force small-domain enumeration over random general linear systems.
# The store lines are the persistence sweep: record round-trips, checksum /
# version / params corruption recovery, the flush requeue / retry-budget /
# drop-warning regressions, the compaction suite (duplicate-heavy shrink,
# crash-mid-compaction recovery at every stage, stale tmp generations,
# header re-checks, concurrent appends), and the warm-vs-cold plus
# warm-vs-compacted verdict-identity sweeps over every examples/ problem (a
# reopened — or compacted-then-reopened — knowledge store must prove exactly
# what the cold lifetime proved).
test-differential:
	$(GO) test -short -race -run 'TestReusedVsFresh|TestSolveAssuming|TestSolveReuse|TestContext|TestFixpointDeterministic|TestFixpointIncremental|TestPsiProg|TestCFPIncremental' \
		./internal/sat/ ./internal/smt/ ./internal/fixpoint/ ./internal/cbi/
	$(GO) test -race -run 'TestRandomGeneralAgainstBox|TestRandomDifferenceAgainstBox|TestLinChecker|TestDiffChecker' ./internal/lia/
	$(GO) test -race -run 'TestRoundTrip|TestLinCheckerVerdict|TestFormulaKey|TestCorruption|TestDedup|TestFlushDurable|TestFlushRequeues|TestFlushRetryBudget|TestFlushPartialWrite|TestDropWarning|TestCompact|TestOutcomeDigest' ./internal/store/
	$(GO) test -race -run 'TestWarmStart|TestStoreParamsMismatch|TestWarmLemma' ./internal/smt/
	$(GO) test -run 'TestMapVsBFS|TestCompareParallel|TestWarmVsCold|TestWarmVsCompacted' ./internal/optimal/ ./internal/bench/ ./internal/precond/

# End-to-end check of the vs3d HTTP daemon: boots the real server on an
# ephemeral port, verifies a spec with all three methods, infers
# preconditions, reads /v1/stats, and shuts down cleanly.
serve-smoke:
	$(GO) test -run TestServeSmoke -v ./cmd/vs3d/

# End-to-end check of the scale-out tier: the real vs3router daemon over TCP
# in front of two real vs3d backends — affinity headers, batch split/merge,
# failover after a backend death, stats, clean shutdown.
cluster-smoke:
	$(GO) test -run TestClusterSmoke -count=1 -v ./cmd/vs3router/

# End-to-end check of the binary VS3R transport: real daemons over TCP —
# single verifies through the router's rpc front, batch fan-out over rpc
# backends, HTTP fallback for a backend that does not advertise rpc,
# mid-flight cancellation reaching the backend, hedging with counters on
# /metrics, and the vs3load -proto rpc harness path.
rpc-smoke:
	$(GO) test -run 'TestRPCSmoke|TestLoadProtoRPC' -count=1 -v ./cmd/vs3router/

# End-to-end check of warm-start persistence: the real vs3d daemon booted
# twice on one -store directory (second lifetime must replay the solved
# problem with zero SMT work), plus the vs3load mid-test restart scenario
# (drain, reopen the store, one corpus pass back at warm-path latency).
restart-smoke:
	$(GO) test -run TestWarmRestart -count=1 -v ./cmd/vs3d/
	$(GO) test -run TestRestartRecovery -count=1 -v ./internal/load/

# End-to-end check of generational log compaction: a store-backed backend
# solves the smoke corpus, its log is duplicated 6x, a second lifetime
# compacts it over POST /v1/compact while serving (>=3x on-disk shrink,
# identical verdicts, zero fresh work), and a third lifetime restarts fully
# warm on the compacted generation.
compact-smoke:
	$(GO) test -run TestCompactSmoke -count=1 -v ./cmd/vs3router/

# Head-to-head routing benchmark (the tentpole proof for PR 6): single node
# vs affinity routing vs random routing over 2 backends on the default
# corpus, asserting affinity wins on from-scratch SMT queries and warm
# cache-hit ratio. Writes BENCH_6.json.
bench-cluster:
	VS3_BENCH_OUT=$(CURDIR)/BENCH_6.json $(GO) test -run TestClusterBench -count=1 -v ./cmd/vs3router/

# Incremental-FM benchmark (the tentpole proof for PR 7): the persistent
# general-LIA checker (LinChecker) vs from-scratch Fourier–Motzkin
# elimination on the non-unit-coefficient family, asserting identical
# verdicts per cell and a >=3x reduction in from-scratch eliminations.
# Writes BENCH_7.json.
bench-lia:
	VS3_BENCH_OUT=$(CURDIR)/BENCH_7.json $(GO) test -run TestLIABench -count=1 -v ./internal/bench/

# Warm-restart benchmark (the tentpole proof for PR 8): the default suite run
# cold on a fresh knowledge store, then again reopening it — a daemon
# restart. Asserts identical verdicts per cell and a >=5x reduction in
# from-scratch work (SMT queries + Fourier–Motzkin eliminations); the
# committed BENCH_8.json doubles as the regression baseline (the warm arm
# must stay within 2x of its recorded work) and is rewritten on success.
bench-warm:
	VS3_BENCH_BASE=$(CURDIR)/BENCH_8.json VS3_BENCH_OUT=$(CURDIR)/BENCH_8.json $(GO) test -run TestWarmBench -count=1 -v ./internal/bench/

# Binary transport benchmark (the tentpole proof for PR 9): the same
# store-backed 2-backend fleet driven over HTTP/JSON and over binary VS3R
# (persistent multiplexed connections), measured on the outcome-replay path
# so the wire dominates each request; plus hedged vs unhedged routing over
# a fleet with one stalled backend. Asserts rpc wins p95 and throughput,
# hedging wins p99, and verdicts stay identical across the full corpus on
# both wires. Gates are wall-clock comparisons, so the test skips under
# plain `go test ./...` and only runs here. Writes BENCH_9.json
# (`benchtab -table 9` renders the committed report).
bench-rpc:
	VS3_BENCH_OUT=$(CURDIR)/BENCH_9.json $(GO) test -run TestRPCBench -count=1 -v ./cmd/vs3router/

# Compaction + store-aware routing benchmark (the tentpole proof for PR 10):
# part A duplicates a warmed store's log 6x and gates a >=3x on-disk shrink
# from compaction with a zero-work warm restart; part B reweights a warmed
# 2-backend fleet's hash ring and replays the corpus store-aware vs
# affinity-only over byte-identical store copies, gating that store-aware
# placement redoes strictly less from-scratch work at identical verdicts.
# Writes BENCH_10.json (`benchtab -table 10` renders the committed report).
bench-compact:
	VS3_BENCH_OUT=$(CURDIR)/BENCH_10.json $(GO) test -run TestCompactBench -count=1 -v ./cmd/vs3router/

# Engine microbenchmarks: the parallel-engine comparisons from PR 1 plus the
# interning/hot-path benchmarks (cache-hit keying, structural equality,
# compiled fills, lattice search).
bench:
	$(GO) test -bench 'Valid(Sequential|Parallel)' -benchtime 2x -run - ./internal/smt/
	$(GO) test -bench 'LFP(Sequential|Parallel)' -benchtime 2x -run - ./internal/fixpoint/
	$(GO) test -bench 'FormulaEq|HashFormula|StringKey|Intern' -run - ./internal/logic/
	$(GO) test -bench 'ValidCacheHit' -run - ./internal/smt/
	$(GO) test -bench 'Fill|NegativeSolutions' -run - ./internal/optimal/ ./internal/template/

# Machine-readable benchmark report: runs the default representative suite
# and writes BENCH_$(BENCH_N).json (per-cell wall time, SMT queries, cache
# hits) for tracking the perf trajectory across PRs.
bench-json:
	$(GO) run ./cmd/benchtab -json BENCH_$(BENCH_N).json

# Re-run the default suite and print a per-cell speedup table against the
# baseline report (set BENCH_BASE to diff against another BENCH_N.json).
bench-compare:
	$(GO) run ./cmd/benchtab -compare $(BENCH_BASE)

# Fast local sanity: one task (List Delete) across all three methods — one
# cell per algorithm, a few seconds end to end.
bench-quick:
	$(GO) run ./cmd/benchtab -quick

# CPU/heap profiles of the default suite (sequential, so the profile is not
# dominated by scheduler noise). Inspect with `go tool pprof cpu.prof`.
profile:
	$(GO) run ./cmd/benchtab -json /dev/null -parallel 1 -cpuprofile cpu.prof -memprofile mem.prof
	@echo "wrote cpu.prof and mem.prof; inspect with: $(GO) tool pprof cpu.prof"

check: build vet test test-race test-differential

clean:
	$(GO) clean ./...
