# Build/test targets. The tier-1 flow is `make check`: build, vet, and the
# default test suite. `make test-short` is the <60s developer loop;
# `make test-race` exercises the parallel solving engine under the race
# detector; `make bench` runs the parallel-engine benchmarks.

GO ?= go

.PHONY: all build vet test test-short test-race bench check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full default suite (the bench package runs its representative search
# subset; the exhaustive sweep needs VS3_SEARCH=1).
test: build vet
	$(GO) test ./...

# Fast unit tests only: skips the search, cross-check, and table-rendering
# integration tests (see README "Test suites").
test-short: build vet
	$(GO) test -short ./...

# Race-detector pass over the concurrent engine: the shared SMT solver,
# the parallel fixed-point worklist, the parallel ψ_Prog encoder, and the
# parallel benchmark runner.
test-race:
	$(GO) test -race -short ./internal/par/ ./internal/smt/ ./internal/fixpoint/ ./internal/cbi/ ./internal/bench/ ./internal/spec/

# Parallel-engine benchmarks (compare *Sequential vs *Parallel per-op times).
bench:
	$(GO) test -bench 'Valid(Sequential|Parallel)' -benchtime 2x -run - ./internal/smt/
	$(GO) test -bench 'LFP(Sequential|Parallel)' -benchtime 2x -run - ./internal/fixpoint/

check: build vet test

clean:
	$(GO) clean ./...
