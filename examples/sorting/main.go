// Sorting: verify sortedness and element preservation (the ∀∃ property) of
// the quicksort partitioning step and the full bubble sort — the workloads
// the paper's introduction motivates.
//
// Run with: go run ./examples/sorting
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/spec"
)

func main() {
	jobs := []struct {
		name    string
		build   func() *spec.Problem
		methods []core.Method // the algorithms that converge quickly here
	}{
		{"Quick Sort (inner), sortedness", bench.QuickSortInnerSorted, []core.Method{core.LFP}},
		{"Quick Sort (inner), preservation", bench.QuickSortInnerPreserves, []core.Method{core.LFP, core.CFP}},
		{"Bubble Sort (flag), sortedness", bench.BubbleSortFlagSorted, []core.Method{core.GFP}},
		{"Bubble Sort (flag), preservation", bench.BubbleSortFlagPreserves, core.Methods},
	}
	for _, job := range jobs {
		fmt.Printf("== %s ==\n", job.name)
		v := core.New(core.Config{})
		for _, m := range job.methods {
			start := time.Now()
			out, err := v.Verify(job.build(), m)
			if err != nil {
				log.Fatal(err)
			}
			status := "no invariant found"
			if out.Proved {
				status = "proved"
			}
			fmt.Printf("  %s: %s in %v\n", m, status, time.Since(start).Round(time.Millisecond))
			if out.Proved {
				for cut, inv := range out.Invariants {
					fmt.Printf("    %s: %s\n", cut, inv)
				}
			}
		}
	}
}
