// Quickstart: verify the paper's running example (ArrayInit, Example 2)
// with all three fixed-point algorithms.
//
// The program initializes A[0..n) to zero; the template says "some range of
// cells is zero" with the range guard left as an unknown over the predicate
// vocabulary Q_{j,{0,i,n}}; the tool discovers the guard 0 ≤ j < i.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/logic"
	"repro/internal/predabs"
	"repro/internal/spec"
	"repro/internal/template"
)

func main() {
	prog := lang.MustParse(`
		program ArrayInit(array A, n) {
			i := 0;
			while loop (i < n) {
				A[i] := 0;
				i := i + 1;
			}
			assert(forall j. (0 <= j && j < n) => A[j] = 0);
		}`)

	// Template at the loop header: ∀j: ?v ⇒ A[j] = 0, with the unknown v
	// ranging over conjunctions of Q_{j,{0,i,n}}.
	problem := &spec.Problem{
		Prog: prog,
		Templates: map[string]logic.Formula{
			"loop": lang.MustParseFormula("forall j. ?v => A[j] = 0"),
		},
		Q: template.Domain{
			"v": predabs.QjV("j", []string{"0", "i", "n"}),
		},
	}

	v := core.New(core.Config{})
	for _, m := range core.Methods {
		out, err := v.Verify(problem, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(core.FormatOutcome(out))
	}
}
