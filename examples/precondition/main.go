// Precondition: infer maximally-weak preconditions (§6 of the paper) for
// two of the functional-correctness benchmarks. PartialInit yields the two
// alternative preconditions the paper highlights (m ≤ n, or the tail cells
// pre-initialized); InitSynthesis synthesizes the missing initializers.
//
// Run with: go run ./examples/precondition
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/spec"
)

func main() {
	jobs := []struct {
		name  string
		build func() *spec.Problem
	}{
		{"Partial Init", bench.PartialInit},
		{"Init Synthesis", bench.InitSynthesis},
		{"Quick Sort (inner) worst case", bench.QuickSortInnerWorstCase},
	}
	for _, job := range jobs {
		fmt.Printf("== %s ==\n", job.name)
		v := core.New(core.Config{})
		start := time.Now()
		pres, enum, err := v.InferPreconditions(job.build())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d maximally-weak precondition(s) in %v\n",
			len(pres), time.Since(start).Round(time.Millisecond))
		for i, p := range pres {
			fmt.Printf("  pre %d: %s\n", i+1, p.Pre)
		}
		if enum.Truncated {
			fmt.Println("  note: enumeration truncated; the set may be incomplete")
		}
	}
}
