// Scaled: verify two programs whose invariants need non-unit coefficients
// (general linear arithmetic, outside the difference fragment).
//
// ScaledInit is the paper's running example with a stride-2 counter in the
// loop guard: relating the write index i to the bound n requires discovering
// j = 2·i, and the exit reasoning 2i ≥ 2n ⇒ i ≥ n only holds over the
// integers (gcd tightening). DoubleStride proves the exact post-condition
// j = 2·n of a counting loop. Both route every theory check through the
// solver's persistent Fourier–Motzkin engine.
//
// Run with: go run ./examples/scaled
package main

import (
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/spec"
)

func main() {
	for _, p := range []struct {
		name  string
		build func() *spec.Problem
	}{
		{"ScaledInit", bench.ScaledInit},
		{"DoubleStride", bench.DoubleStride},
		{"HalfBound", bench.HalfBound},
	} {
		fmt.Printf("== %s ==\n", p.name)
		v := core.New(core.Config{})
		out, err := v.Verify(p.build(), core.LFP)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(core.FormatOutcome(out))
		s := v.Engine().S
		fmt.Printf("theory checks: %d incremental eliminations, %d cube hits, %d from scratch\n\n",
			s.NumFMIncremental(), s.NumFMCubeHits(), s.NumFMScratch())
	}
}
